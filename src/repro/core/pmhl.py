"""Partitioned Multi-stage Hub Labeling (PMHL, Section V of the paper).

PMHL partitions the road network, builds MHL-style indexes for the partitions
and the overlay, and layers three PSP strategies on top of each other so that
query efficiency keeps improving *while* the index is being maintained:

==============  =====================================  ==========================
update stage    work                                   query stage released
==============  =====================================  ==========================
U1              on-spot edge refresh                   Q1 — BiDijkstra
U2              no-boundary shortcut update            Q2 — partitioned CH (PCH)
U3              no-boundary label update               Q3 — no-boundary query
U4              post-boundary index update             Q4 — post-boundary query
U5              cross-boundary index update            Q5 — cross-boundary query
==============  =====================================  ==========================

Partition-level work inside U2-U4 is reported with per-partition timings and
U5 with per-branch-root timings so the throughput evaluator can model the
paper's multi-threaded execution (see ``repro.throughput.parallel``).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.algorithms.dijkstra import bidijkstra
from repro.base import DistanceIndex, StageTiming, Timer, UpdateReport
from repro.core.cross_boundary import build_cross_boundary_index
from repro.core.stages import PMHLQueryStage, timed_label_update_by_root
from repro.exceptions import IndexNotBuiltError, VertexNotFoundError
from repro.graph.graph import Graph
from repro.graph.updates import UpdateBatch
from repro.hierarchy.ch import ch_bidirectional_query
from repro.kernels.label_store import LabelStore
from repro.kernels.shortcut_store import ShortcutStore
from repro.labeling.h2h import H2HLabels
from repro.partitioning.base import Partitioning
from repro.partitioning.natural_cut import natural_cut_partition
from repro.partitioning.ordering import boundary_first_order
from repro.psp.overlay import OverlayIndex
from repro.psp.partition_family import PartitionIndexFamily
from repro.registry import IndexSpec, register_spec
from repro.treedec.tree import TreeDecomposition

INF = math.inf


class PMHLIndex(DistanceIndex):
    """Partitioned Multi-stage Hub Labeling index.

    Parameters
    ----------
    graph:
        The road network (mutated in place by updates).
    num_partitions:
        Partition number ``k`` (the paper's default is 8-32 depending on size).
    partitioning:
        Optional pre-computed partitioning; defaults to the natural-cut
        (PUNCH-substitute) partitioner.
    seed:
        Partitioner seed.
    """

    name = "PMHL"

    def __init__(
        self,
        graph: Graph,
        num_partitions: int = 8,
        partitioning: Optional[Partitioning] = None,
        seed: int = 0,
    ):
        super().__init__(graph)
        self.num_partitions = num_partitions
        self.seed = seed
        self.partitioning = partitioning
        self.order: List[int] = []
        self.family: Optional[PartitionIndexFamily] = None
        self.overlay: Optional[OverlayIndex] = None
        self.extended_family: Optional[PartitionIndexFamily] = None
        self.boundary_distances: List[Dict[Tuple[int, int], float]] = []
        self.cross_tree: Optional[TreeDecomposition] = None
        self.cross_labels: Optional[H2HLabels] = None
        self.build_breakdown: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Construction (Section V-C, Steps 1-6)
    # ------------------------------------------------------------------
    def _build(self) -> None:
        breakdown: Dict[str, float] = {}
        start = time.perf_counter()
        if self.partitioning is None:
            self.partitioning = natural_cut_partition(
                self.graph, self.num_partitions, seed=self.seed
            )
        self.order = boundary_first_order(self.graph, self.partitioning)
        breakdown["partitioning_and_ordering"] = time.perf_counter() - start
        obs.record_span(
            "pmhl.build.partitioning_and_ordering",
            breakdown["partitioning_and_ordering"],
        )

        # Steps 1-3: no-boundary index ({L_i}, overlay graph, overlay index).
        start = time.perf_counter()
        self.family = PartitionIndexFamily(self.partitioning, self.order, with_labels=True)
        self.family.build()
        self.overlay = OverlayIndex(self.partitioning, self.family, self.order, with_labels=True)
        self.overlay.build()
        breakdown["no_boundary"] = time.perf_counter() - start
        obs.record_span("pmhl.build.no_boundary", breakdown["no_boundary"])

        # Steps 4-5: post-boundary index ({L'_i} on extended partitions).
        start = time.perf_counter()
        extended_graphs: List[Graph] = []
        self.boundary_distances = []
        for pid in range(self.partitioning.num_partitions):
            extended = self.partitioning.subgraph(pid)
            distances = self.overlay.boundary_pair_distances(pid)
            for (b1, b2), weight in distances.items():
                if b1 < b2 and weight < INF:
                    if extended.has_edge(b1, b2):
                        extended.set_edge_weight(
                            b1, b2, min(weight, extended.edge_weight(b1, b2))
                        )
                    else:
                        extended.add_edge(b1, b2, weight)
            extended_graphs.append(extended)
            self.boundary_distances.append(distances)
        self.extended_family = PartitionIndexFamily(
            self.partitioning, self.order, with_labels=True, graphs=extended_graphs
        )
        self.extended_family.build()
        breakdown["post_boundary"] = time.perf_counter() - start
        obs.record_span("pmhl.build.post_boundary", breakdown["post_boundary"])

        # Step 6: cross-boundary index L* via tree aggregation.
        start = time.perf_counter()
        _, self.cross_tree, self.cross_labels = build_cross_boundary_index(
            self.partitioning, self.order, self.family, self.overlay
        )
        breakdown["cross_boundary"] = time.perf_counter() - start
        obs.record_span("pmhl.build.cross_boundary", breakdown["cross_boundary"])
        self.build_breakdown = breakdown

    def _require_built(self) -> None:
        if self.cross_labels is None:
            raise IndexNotBuiltError("PMHL index has not been built")

    # ------------------------------------------------------------------
    # Frozen stores (one per query stage; see repro.kernels)
    #
    # Each store reads only structures that are *final* by the time the
    # serving engine releases its query stage — family/overlay labels after
    # U-Stage 3, extended labels after U-Stage 4, cross labels after U-Stage
    # 5 — so a store frozen in a mid-batch grace window stays valid for the
    # rest of the epoch.
    # ------------------------------------------------------------------
    def _cross_store(self):
        return self._kernel(
            "cross_labels", lambda: LabelStore.freeze(self.cross_labels)
        )

    def _pch_store(self):
        def freeze():
            boundary = self.partitioning.all_boundary()
            partition_of = self.partitioning.partition_of
            overlay_shortcuts = self.overlay.contraction.shortcuts
            contractions = self.family.contractions

            def upward(v: int) -> Dict[int, float]:
                if v in boundary:
                    return overlay_shortcuts[v]
                return contractions[partition_of(v)].shortcuts[v]

            return ShortcutStore.freeze(upward, self.order)

        return self._kernel("pch", freeze)

    def _overlay_store(self):
        return self._kernel(
            "overlay_labels", lambda: LabelStore.freeze(self.overlay.labels)
        )

    def _family_store(self, family: PartitionIndexFamily, tag: str, pid: int):
        return self._kernel(
            f"{tag}_labels_{pid}", lambda: LabelStore.freeze(family.labels[pid])
        )

    def _overlay_distance(self, b1: int, b2: int) -> float:
        store = self._overlay_store()
        if store is not None and store.query_fn is not None:
            return store.query_fn(b1, b2)
        return self.overlay.query(b1, b2)

    def _family_distance(
        self, family: PartitionIndexFamily, tag: str, pid: int, source: int, target: int
    ) -> float:
        store = self._family_store(family, tag, pid)
        if store is not None and store.query_fn is not None:
            return store.query_fn(source, target)
        return family.query(pid, source, target)

    def _family_to_boundary(
        self, family: PartitionIndexFamily, tag: str, pid: int, vertex: int
    ) -> Dict[int, float]:
        store = self._family_store(family, tag, pid)
        if store is not None:
            boundary = sorted(self.partitioning.boundary(pid))
            return dict(zip(boundary, store.one_to_many(vertex, boundary)))
        return family.distances_to_boundary(pid, vertex)

    # ------------------------------------------------------------------
    # Query processing (Q-Stages 1-5)
    # ------------------------------------------------------------------
    def query_bidijkstra(self, source: int, target: int) -> float:
        """Q-Stage 1: index-free bidirectional Dijkstra on the live graph."""
        snapshot = self._graph_snapshot()
        if snapshot is not None:
            return snapshot.bidijkstra(source, target)
        return bidijkstra(self.graph, source, target)

    def query_pch(self, source: int, target: int) -> float:
        """Q-Stage 2: partitioned CH query over the union of shortcut arrays."""
        self._require_built()
        store = self._pch_store()
        if store is not None:
            return store.query(source, target)
        boundary = self.partitioning.all_boundary()

        def upward(v: int) -> Dict[int, float]:
            if v in boundary:
                return self.overlay.contraction.shortcuts[v]
            return self.family.contractions[self.partitioning.partition_of(v)].shortcuts[v]

        return ch_bidirectional_query(source, target, upward)

    def query_no_boundary(self, source: int, target: int) -> float:
        """Q-Stage 3: no-boundary PSP query (distance concatenation via {L_i}, L̃)."""
        self._require_built()
        return self._psp_query(source, target, self.family, same_partition_direct=False)

    def query_post_boundary(self, source: int, target: int) -> float:
        """Q-Stage 4: post-boundary PSP query (same-partition queries answered by {L'_i})."""
        self._require_built()
        return self._psp_query(source, target, self.extended_family, same_partition_direct=True)

    def query_cross_boundary(self, source: int, target: int) -> float:
        """Q-Stage 5: cross-boundary 2-hop query on L* (fastest)."""
        self._require_built()
        store = self._cross_store()
        if store is not None and store.query_fn is not None:
            return store.query_fn(source, target)
        return self.cross_labels.query(source, target)

    def query(self, source: int, target: int) -> float:
        """Default query path: the fastest (cross-boundary) stage."""
        self._require_built()
        if not self.graph.has_vertex(source):
            raise VertexNotFoundError(source)
        if not self.graph.has_vertex(target):
            raise VertexNotFoundError(target)
        return self.query_cross_boundary(source, target)

    def query_one_to_many(self, source: int, targets: Sequence[int]) -> List[float]:
        """Amortised batch query on the cross-boundary labels ``L*``.

        With kernels on, the whole batch is answered by the frozen store's
        one-to-many kernel (native hub scan or one vectorized reduction);
        the pure reference fetches the source's label array once and
        intersects it against every target.  The 2-hop arithmetic is exactly
        the scalar path's either way, so distances are bit-identical.
        """
        self._require_built()
        targets = list(targets)
        store = self._cross_store()
        if store is not None:
            return store.one_to_many(source, targets)
        if not self.graph.has_vertex(source):
            raise VertexNotFoundError(source)
        for target in targets:
            if not self.graph.has_vertex(target):
                raise VertexNotFoundError(target)
        return self.cross_labels.query_one_to_many(source, targets)

    def query_many(self, pairs) -> List[float]:
        """Vectorized pair-batch kernel on ``L*`` (no source grouping needed)."""
        self._require_built()
        store = self._cross_store()
        if store is not None:
            return store.query_pairs(list(pairs))
        return super().query_many(pairs)

    def query_at_stage(self, source: int, target: int, stage: PMHLQueryStage) -> float:
        """Dispatch a query to the requested stage's algorithm."""
        if stage == PMHLQueryStage.BIDIJKSTRA:
            return self.query_bidijkstra(source, target)
        if stage == PMHLQueryStage.PCH:
            return self.query_pch(source, target)
        if stage == PMHLQueryStage.NO_BOUNDARY:
            return self.query_no_boundary(source, target)
        if stage == PMHLQueryStage.POST_BOUNDARY:
            return self.query_post_boundary(source, target)
        return self.query_cross_boundary(source, target)

    def _psp_query(
        self,
        source: int,
        target: int,
        family: PartitionIndexFamily,
        same_partition_direct: bool,
    ) -> float:
        """Shared no-/post-boundary query logic (Section III-C query cases).

        Distance fetches route through the kernel-aware helpers (frozen
        per-partition / overlay label stores) when ``use_kernels`` is on;
        the case analysis itself is identical either way.
        """
        if source == target:
            return 0.0
        tag = "extended" if family is self.extended_family else "family"
        partitioning = self.partitioning
        pid_s = partitioning.partition_of(source)
        pid_t = partitioning.partition_of(target)
        boundary = partitioning.all_boundary()
        source_is_boundary = source in boundary
        target_is_boundary = target in boundary

        if pid_s == pid_t:
            local = self._family_distance(family, tag, pid_s, source, target)
            if same_partition_direct:
                return local
            best = local
            source_to_boundary = self._family_to_boundary(family, tag, pid_s, source)
            target_to_boundary = self._family_to_boundary(family, tag, pid_s, target)
            for bp, d_s in source_to_boundary.items():
                if d_s == INF:
                    continue
                for bq, d_t in target_to_boundary.items():
                    if d_t == INF:
                        continue
                    candidate = d_s + self._overlay_distance(bp, bq) + d_t
                    if candidate < best:
                        best = candidate
            return best

        if source_is_boundary and target_is_boundary:
            return self._overlay_distance(source, target)
        if source_is_boundary:
            return self._psp_boundary_to_inner(source, pid_t, target, family, tag)
        if target_is_boundary:
            return self._psp_boundary_to_inner(target, pid_s, source, family, tag)

        best = INF
        source_to_boundary = self._family_to_boundary(family, tag, pid_s, source)
        target_to_boundary = self._family_to_boundary(family, tag, pid_t, target)
        for bp, d_s in source_to_boundary.items():
            if d_s == INF:
                continue
            for bq, d_t in target_to_boundary.items():
                if d_t == INF:
                    continue
                candidate = d_s + self._overlay_distance(bp, bq) + d_t
                if candidate < best:
                    best = candidate
        return best

    def _psp_boundary_to_inner(
        self,
        boundary_vertex: int,
        pid: int,
        inner: int,
        family: PartitionIndexFamily,
        tag: str,
    ) -> float:
        best = INF
        for bq, d_t in self._family_to_boundary(family, tag, pid, inner).items():
            if d_t == INF:
                continue
            candidate = self._overlay_distance(boundary_vertex, bq) + d_t
            if candidate < best:
                best = candidate
        return best

    # ------------------------------------------------------------------
    # Maintenance (U-Stages 1-5, Section V-D)
    # ------------------------------------------------------------------
    def _apply_batch(self, batch: UpdateBatch) -> UpdateReport:
        self._require_built()
        report = UpdateReport()
        partitioning = self.partitioning
        # Before any structure mutates: stage queries released mid-batch
        # refreeze from the new epoch's structures, never a pre-update store.
        self.invalidate_kernels()

        # U-Stage 1: on-spot edge update.
        with Timer() as timer:
            batch.apply(self.graph)
        self._emit_stage(report, StageTiming("edge_update", timer.seconds))

        # Group updates by partition / inter-partition.
        per_partition: Dict[int, List] = {}
        inter_updates: List = []
        for update in batch:
            pid_u = partitioning.partition_of(update.u)
            pid_v = partitioning.partition_of(update.v)
            if pid_u == pid_v:
                per_partition.setdefault(pid_u, []).append(update)
            else:
                inter_updates.append(update)

        # U-Stage 2: no-boundary shortcut update (partitions in parallel, then overlay).
        partition_shortcut_times: List[float] = []
        partition_changed: Dict[int, Dict[int, List[int]]] = {}
        changed_boundary: Dict[Tuple[int, int], float] = {}
        for pid, updates in sorted(per_partition.items()):
            start = time.perf_counter()
            changed_edges = self.family.apply_edge_updates(pid, updates)
            changed_report = self.family.update_shortcuts(pid, changed_edges)
            partition_changed[pid] = changed_report
            boundary = partitioning.boundary(pid)
            for v, neighbours in changed_report.items():
                if v in boundary:
                    for u in neighbours:
                        if u in boundary:
                            changed_boundary[(v, u)] = self.family.contractions[pid].shortcuts[v][u]
            partition_shortcut_times.append(time.perf_counter() - start)
        self._emit_stage(report,
            StageTiming(
                "partition_shortcut_update",
                sum(partition_shortcut_times),
                parallel_times=partition_shortcut_times,
            )
        )

        with Timer() as timer:
            overlay_changed = self._overlay_shortcut_update(inter_updates, changed_boundary)
        self._emit_stage(report, StageTiming("overlay_shortcut_update", timer.seconds))

        # U-Stage 3: no-boundary label update (partitions in parallel, then overlay).
        partition_label_times: List[float] = []
        for pid, changed_report in sorted(partition_changed.items()):
            start = time.perf_counter()
            self.family.update_labels(pid, changed_report.keys())
            partition_label_times.append(time.perf_counter() - start)
        self._emit_stage(report,
            StageTiming(
                "partition_label_update",
                sum(partition_label_times),
                parallel_times=partition_label_times,
            )
        )

        with Timer() as timer:
            if overlay_changed:
                self.overlay.labels.update_top_down(overlay_changed.keys())
        self._emit_stage(report, StageTiming("overlay_label_update", timer.seconds))

        # U-Stage 4: post-boundary index update (partitions in parallel).
        post_times = self._post_boundary_update(per_partition)
        self._emit_stage(report,
            StageTiming("post_boundary_update", sum(post_times), parallel_times=post_times)
        )

        # U-Stage 5: cross-boundary index update (branch roots in parallel).
        with Timer() as timer:
            affected: Set[int] = set(overlay_changed.keys())
            for changed_report in partition_changed.values():
                affected |= set(changed_report.keys())
            _, per_root_times = timed_label_update_by_root(self.cross_labels, affected)
        self._emit_stage(report,
            StageTiming("cross_boundary_update", timer.seconds, parallel_times=per_root_times)
        )

        self.last_report = report
        return report

    def _overlay_shortcut_update(
        self, inter_updates: List, changed_boundary: Dict[Tuple[int, int], float]
    ) -> Dict[int, List[int]]:
        """Install overlay edge changes and maintain the overlay shortcut arrays."""
        overlay = self.overlay
        changed_edges: List[Tuple[int, int]] = []
        for update in inter_updates:
            if overlay.graph.has_edge(update.u, update.v):
                overlay.graph.set_edge_weight(update.u, update.v, update.new_weight)
                changed_edges.append(update.key())
        for (b1, b2), weight in changed_boundary.items():
            if overlay.graph.has_edge(b1, b2):
                if overlay.graph.edge_weight(b1, b2) != weight:
                    overlay.graph.set_edge_weight(b1, b2, weight)
                    changed_edges.append((b1, b2) if b1 < b2 else (b2, b1))
            else:
                overlay.graph.add_edge(b1, b2, weight)
                changed_edges.append((b1, b2) if b1 < b2 else (b2, b1))
        from repro.treedec.mde import update_shortcuts_bottom_up

        return update_shortcuts_bottom_up(overlay.contraction, overlay.graph, changed_edges)

    def _post_boundary_update(self, per_partition: Dict[int, List]) -> List[float]:
        """U-Stage 4: refresh extended partitions whose boundary distances or edges changed."""
        partitioning = self.partitioning
        times: List[float] = []
        for pid in range(partitioning.num_partitions):
            start = time.perf_counter()
            boundary = partitioning.boundary(pid)
            new_distances = self.overlay.boundary_pair_distances(pid)
            changed_pairs = {
                pair: weight
                for pair, weight in new_distances.items()
                if pair[0] < pair[1]
                and weight < INF
                and self.boundary_distances[pid].get(pair) != weight
            }
            intra_updates = [
                u
                for u in per_partition.get(pid, [])
                if not (u.u in boundary and u.v in boundary)
            ]
            if not changed_pairs and not intra_updates:
                times.append(time.perf_counter() - start)
                continue
            self.boundary_distances[pid] = new_distances
            changed_edges = self.extended_family.apply_edge_updates(pid, intra_updates)
            changed_edges += self.extended_family.set_edge_weights(pid, changed_pairs)
            changed_report = self.extended_family.update_shortcuts(pid, changed_edges)
            self.extended_family.update_labels(pid, changed_report.keys())
            times.append(time.perf_counter() - start)
        return times

    # ------------------------------------------------------------------
    # Introspection and throughput metadata
    # ------------------------------------------------------------------
    def vertex_partition(self, v: int) -> Optional[int]:
        if self.partitioning is None:
            return None
        return self.partitioning.partition_of(v)

    def index_size(self) -> int:
        self._require_built()
        return (
            self.family.index_size()
            + self.overlay.index_size()
            + self.extended_family.index_size()
            + self.cross_labels.label_entry_count()
        )

    # ------------------------------------------------------------------
    # Snapshot persistence (see repro.store)
    # ------------------------------------------------------------------
    def to_state(self, io) -> Dict[str, object]:
        """All five stages' structures; the cross-boundary contraction is not
        stored — it is recomposed on load so its shortcut dicts keep sharing
        the family/overlay dictionaries by reference (the property U-Stage 5
        maintenance relies on)."""
        from repro.store import codec

        self._require_built()
        return {
            "partitioning": codec.pack_partitioning(self.partitioning, io),
            "order": io.put_ints(self.order),
            "family": codec.pack_family(self.family, io),
            "overlay": codec.pack_overlay(self.overlay, io),
            "extended_family": codec.pack_family(self.extended_family, io),
            "boundary_distances": [
                codec.pack_pair_table(table, io) for table in self.boundary_distances
            ],
            "cross_labels": codec.pack_labels(self.cross_labels, io),
            "build_breakdown": dict(self.build_breakdown),
        }

    def from_state(self, state: Dict[str, object], io) -> None:
        from repro.core.cross_boundary import compose_cross_boundary_contraction
        from repro.store import codec

        self.partitioning = codec.unpack_partitioning(
            state["partitioning"], io, self.graph
        )
        self.order = io.get_list(state["order"])
        self.family = codec.unpack_family(
            state["family"], io, self.partitioning, self.order
        )
        self.overlay = codec.unpack_overlay(
            state["overlay"], io, self.partitioning, self.family, self.order
        )
        self.extended_family = codec.unpack_family(
            state["extended_family"], io, self.partitioning, self.order
        )
        self.boundary_distances = [
            codec.unpack_pair_table(table, io) for table in state["boundary_distances"]
        ]
        composed = compose_cross_boundary_contraction(
            self.partitioning, self.order, self.family, self.overlay
        )
        self.cross_tree = TreeDecomposition.from_contraction(composed, allow_forest=True)
        self.cross_labels = codec.unpack_labels(state["cross_labels"], io, self.cross_tree)
        self.build_breakdown = dict(state.get("build_breakdown", {}))

    def _kernel_exports(self):
        return {"cross_labels": self._cross_store}

    def stage_catalog(self) -> List[Dict[str, object]]:
        """Query stages in release order, with the update stage that releases each."""
        return [
            {
                "query_stage": PMHLQueryStage.BIDIJKSTRA,
                "released_after": "edge_update",
                "query": self.query_bidijkstra,
            },
            {
                "query_stage": PMHLQueryStage.PCH,
                "released_after": "overlay_shortcut_update",
                "query": self.query_pch,
            },
            {
                "query_stage": PMHLQueryStage.NO_BOUNDARY,
                "released_after": "overlay_label_update",
                "query": self.query_no_boundary,
            },
            {
                "query_stage": PMHLQueryStage.POST_BOUNDARY,
                "released_after": "post_boundary_update",
                "query": self.query_post_boundary,
            },
            {
                "query_stage": PMHLQueryStage.CROSS_BOUNDARY,
                "released_after": "cross_boundary_update",
                "query": self.query_cross_boundary,
            },
        ]


@register_spec
@dataclass(frozen=True)
class PMHLSpec(IndexSpec):
    """Construction spec for the Partitioned Multi-stage Hub Labeling index."""

    method = "PMHL"
    config_fields = {"num_partitions": "partition_number", "seed": "seed"}

    #: Partition number ``k``.
    num_partitions: int = 8
    #: Partitioner seed.
    seed: int = 0

    def create(self, graph: Graph) -> PMHLIndex:
        return PMHLIndex(graph, num_partitions=self.num_partitions, seed=self.seed)
