"""Post-partitioned Multi-stage Hub Labeling (PostMHL, Section VI of the paper).

PostMHL turns the PSP design around: it first computes an MDE-based tree
decomposition of the whole road network (which yields a high-quality vertex
order), then derives the partitions *from the tree* via TD-partitioning
(Algorithm 2) and amalgamates the overlay, post-boundary and cross-boundary
indexes into that single tree:

* **overlay index** — distance arrays of the overlay vertices (the vertices
  outside every partition subtree),
* **post-boundary index** — for in-partition vertices, the distance-array
  entries to in-partition ancestors plus a boundary array ``X(v).disB`` with
  the global distances to the partition boundary ``B_i = X(root_i).N``,
* **cross-boundary index** — the distance-array entries of in-partition
  vertices to their overlay ancestors.

Because the cross-boundary part equals a plain H2H index over the MDE order,
PostMHL's fastest query stage matches DH2H query efficiency, while maintenance
parallelises over partitions (U-Stages 2, 4, 5) as in the paper's Figure 9.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.algorithms.dijkstra import bidijkstra
from repro.base import DistanceIndex, StageTiming, Timer, UpdateReport
from repro.core.stages import PostMHLQueryStage
from repro.exceptions import IndexNotBuiltError, VertexNotFoundError
from repro.graph.graph import Graph
from repro.graph.updates import UpdateBatch
from repro.hierarchy.ch import ch_bidirectional_query
from repro.kernels.label_store import LabelStore
from repro.kernels.shortcut_store import ShortcutStore
from repro.labeling.h2h import H2HLabels
from repro.partitioning.td_partition import TDPartitioning, td_partition
from repro.registry import IndexSpec, register_spec
from repro.treedec.mde import ContractionResult, contract_graph, update_shortcuts_bottom_up
from repro.treedec.tree import TreeDecomposition

INF = math.inf


class PostMHLIndex(DistanceIndex):
    """Post-partitioned Multi-stage Hub Labeling index.

    Parameters
    ----------
    graph:
        The road network (mutated in place by updates).
    bandwidth:
        ``τ`` — maximum boundary size allowed for a partition root.
    expected_partitions:
        ``k_e`` — desired partition count for TD-partitioning.
    beta_lower, beta_upper:
        Partition-size imbalance bounds (the paper uses 0.1 and 2).
    """

    name = "PostMHL"

    def __init__(
        self,
        graph: Graph,
        bandwidth: int = 12,
        expected_partitions: int = 8,
        beta_lower: float = 0.1,
        beta_upper: float = 2.0,
    ):
        super().__init__(graph)
        self.bandwidth = bandwidth
        self.expected_partitions = expected_partitions
        self.beta_lower = beta_lower
        self.beta_upper = beta_upper
        self.contraction: Optional[ContractionResult] = None
        self.tree: Optional[TreeDecomposition] = None
        self.td: Optional[TDPartitioning] = None
        self.labels: Optional[H2HLabels] = None
        #: ``disB[v][j]`` — global distance from in-partition vertex ``v`` to
        #: the ``j``-th boundary vertex of its partition.
        self.disB: Dict[int, List[float]] = {}
        #: Per-partition boundary vertex index (vertex -> position in ``B_i``).
        self.boundary_position: List[Dict[int, int]] = []
        #: Per-partition all-pair boundary distance tables ``D``.
        self.boundary_distances: List[Dict[Tuple[int, int], float]] = []
        self.build_breakdown: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Construction (Section VI-B, Algorithm 4)
    # ------------------------------------------------------------------
    def _build(self) -> None:
        breakdown: Dict[str, float] = {}

        start = time.perf_counter()
        self.contraction = contract_graph(self.graph)
        self.tree = TreeDecomposition.from_contraction(self.contraction)
        breakdown["tree_decomposition"] = time.perf_counter() - start
        obs.record_span(
            "postmhl.build.tree_decomposition", breakdown["tree_decomposition"]
        )

        start = time.perf_counter()
        self.td = td_partition(
            self.tree,
            bandwidth=self.bandwidth,
            expected_partitions=self.expected_partitions,
            beta_lower=self.beta_lower,
            beta_upper=self.beta_upper,
        )
        breakdown["td_partitioning"] = time.perf_counter() - start
        obs.record_span("postmhl.build.td_partitioning", breakdown["td_partitioning"])

        start = time.perf_counter()
        self.labels = H2HLabels(self.tree)
        self.labels.build()
        breakdown["labels"] = time.perf_counter() - start
        obs.record_span("postmhl.build.labels", breakdown["labels"])

        start = time.perf_counter()
        self._build_boundary_arrays()
        breakdown["boundary_arrays"] = time.perf_counter() - start
        obs.record_span("postmhl.build.boundary_arrays", breakdown["boundary_arrays"])
        self.build_breakdown = breakdown

    def _build_boundary_arrays(self) -> None:
        """Materialise ``disB`` and the per-partition boundary distance tables."""
        self.disB = {}
        self.boundary_position = []
        self.boundary_distances = []
        for pid, boundary in enumerate(self.td.boundary):
            self.boundary_position.append({b: j for j, b in enumerate(boundary)})
            distances: Dict[Tuple[int, int], float] = {}
            for i, b1 in enumerate(boundary):
                for b2 in boundary[i + 1 :]:
                    d = self.labels.query(b1, b2)
                    distances[(b1, b2)] = d
                    distances[(b2, b1)] = d
            self.boundary_distances.append(distances)
            depth = self.tree.depth
            for v in self.td.partition_vertices[pid]:
                self.disB[v] = [self.labels.dis[v][depth[b]] for b in boundary]

    def _require_built(self) -> None:
        if self.labels is None:
            raise IndexNotBuiltError("PostMHL index has not been built")

    # ------------------------------------------------------------------
    # Frozen stores (see repro.kernels)
    #
    # The amalgamated label store is only frozen for the *fastest* stage
    # (released after U-Stage 5, when every ``dis`` entry is final); the
    # post-boundary stage keeps the pure path because mid-batch its overlay
    # label reads would otherwise share a store with stale in-partition
    # entries.
    # ------------------------------------------------------------------
    def _label_store(self):
        return self._kernel("labels", lambda: LabelStore.freeze(self.labels))

    def _pch_store(self):
        return self._kernel(
            "pch",
            lambda: ShortcutStore.freeze(
                lambda v: self.contraction.shortcuts[v], self.contraction.order
            ),
        )

    # ------------------------------------------------------------------
    # Query processing (Q-Stages 1-4)
    # ------------------------------------------------------------------
    def query_bidijkstra(self, source: int, target: int) -> float:
        """Q-Stage 1: index-free bidirectional Dijkstra on the live graph."""
        snapshot = self._graph_snapshot()
        if snapshot is not None:
            return snapshot.bidijkstra(source, target)
        return bidijkstra(self.graph, source, target)

    def query_pch(self, source: int, target: int) -> float:
        """Q-Stage 2: partitioned CH query over the shared shortcut arrays."""
        self._require_built()
        store = self._pch_store()
        if store is not None:
            return store.query(source, target)
        return ch_bidirectional_query(
            source, target, lambda v: self.contraction.shortcuts[v]
        )

    def query_post_boundary(self, source: int, target: int) -> float:
        """Q-Stage 3: post-boundary query (boundary arrays + overlay labels)."""
        self._require_built()
        if source == target:
            return 0.0
        pid_s = self.td.partition_of(source)
        pid_t = self.td.partition_of(target)

        if pid_s is None and pid_t is None:
            return self.labels.query(source, target)
        if pid_s is not None and pid_s == pid_t:
            return self._same_partition_post_query(pid_s, source, target)
        if pid_s is None:
            return self._overlay_to_partition_query(source, pid_t, target)
        if pid_t is None:
            return self._overlay_to_partition_query(target, pid_s, source)
        return self._cross_partition_post_query(pid_s, source, pid_t, target)

    def query_cross_boundary(self, source: int, target: int) -> float:
        """Q-Stage 4: full H2H query on the amalgamated tree (fastest)."""
        self._require_built()
        store = self._label_store()
        if store is not None and store.query_fn is not None:
            return store.query_fn(source, target)
        return self.labels.query(source, target)

    def query(self, source: int, target: int) -> float:
        """Default query path: the fastest (cross-boundary) stage."""
        self._require_built()
        if not self.graph.has_vertex(source):
            raise VertexNotFoundError(source)
        if not self.graph.has_vertex(target):
            raise VertexNotFoundError(target)
        return self.query_cross_boundary(source, target)

    def query_one_to_many(self, source: int, targets: Sequence[int]) -> List[float]:
        """Amortised batch query on the amalgamated H2H labels.

        With kernels on, the whole batch runs through the frozen store's
        one-to-many kernel; the pure reference fetches the source's distance
        array once and intersects it against every target.  The 2-hop
        arithmetic is exactly the scalar path's either way, so distances are
        bit-identical.
        """
        self._require_built()
        targets = list(targets)
        store = self._label_store()
        if store is not None:
            return store.one_to_many(source, targets)
        if not self.graph.has_vertex(source):
            raise VertexNotFoundError(source)
        for target in targets:
            if not self.graph.has_vertex(target):
                raise VertexNotFoundError(target)
        return self.labels.query_one_to_many(source, targets)

    def query_many(self, pairs) -> List[float]:
        """Vectorized pair-batch kernel on the amalgamated labels."""
        self._require_built()
        store = self._label_store()
        if store is not None:
            return store.query_pairs(list(pairs))
        return super().query_many(pairs)

    def query_at_stage(self, source: int, target: int, stage: PostMHLQueryStage) -> float:
        """Dispatch a query to the requested stage's algorithm."""
        if stage == PostMHLQueryStage.BIDIJKSTRA:
            return self.query_bidijkstra(source, target)
        if stage == PostMHLQueryStage.PCH:
            return self.query_pch(source, target)
        if stage == PostMHLQueryStage.POST_BOUNDARY:
            return self.query_post_boundary(source, target)
        return self.query_cross_boundary(source, target)

    def _same_partition_post_query(self, pid: int, source: int, target: int) -> float:
        """Same-partition query over the LCA separator using post-boundary data only."""
        tree = self.tree
        lca = tree.lca(source, target)
        depth = tree.depth
        overlay = self.td.overlay_vertices
        position = self.boundary_position[pid]
        dis_s, dis_t = self.labels.dis[source], self.labels.dis[target]
        best = dis_s[depth[lca]] + dis_t[depth[lca]]
        for x in tree.neighbors(lca):
            if x in overlay:
                j = position[x]
                candidate = self.disB[source][j] + self.disB[target][j]
            else:
                candidate = dis_s[depth[x]] + dis_t[depth[x]]
            if candidate < best:
                best = candidate
        return best

    def _overlay_to_partition_query(self, overlay_vertex: int, pid: int, inner: int) -> float:
        """Query between an overlay vertex and an in-partition vertex."""
        best = INF
        for j, b in enumerate(self.td.boundary[pid]):
            candidate = self.labels.query(overlay_vertex, b) + self.disB[inner][j]
            if candidate < best:
                best = candidate
        return best

    def _cross_partition_post_query(
        self, pid_s: int, source: int, pid_t: int, target: int
    ) -> float:
        """Cross-partition query concatenating boundary arrays through the overlay."""
        best = INF
        boundary_s = self.td.boundary[pid_s]
        boundary_t = self.td.boundary[pid_t]
        dis_b_s = self.disB[source]
        dis_b_t = self.disB[target]
        for i, bp in enumerate(boundary_s):
            d_s = dis_b_s[i]
            if d_s == INF:
                continue
            for j, bq in enumerate(boundary_t):
                d_t = dis_b_t[j]
                if d_t == INF:
                    continue
                candidate = d_s + self.labels.query(bp, bq) + d_t
                if candidate < best:
                    best = candidate
        return best

    # ------------------------------------------------------------------
    # Maintenance (U-Stages 1-5, Section VI-C)
    # ------------------------------------------------------------------
    def _apply_batch(self, batch: UpdateBatch) -> UpdateReport:
        self._require_built()
        report = UpdateReport()
        tree = self.tree
        td = self.td
        # Before any structure mutates (kernel staleness protocol).
        self.invalidate_kernels()

        # U-Stage 1: on-spot edge update.
        with Timer() as timer:
            batch.apply(self.graph)
        self._emit_stage(report, StageTiming("edge_update", timer.seconds))

        # Group the changed edges by the partition of their owning vertex.
        per_partition_edges: Dict[int, List[Tuple[int, int]]] = {}
        overlay_edges: List[Tuple[int, int]] = []
        for update in batch:
            owner = self.contraction.owner(update.u, update.v)
            pid = td.partition_of(owner)
            if pid is None:
                overlay_edges.append(update.key())
            else:
                per_partition_edges.setdefault(pid, []).append(update.key())

        # U-Stage 2: shortcut array update (partitions in parallel, then overlay).
        partition_times: List[float] = []
        partition_changed: Dict[int, Dict[int, List[int]]] = {}
        escaped: Set[int] = set()
        for pid, edges in sorted(per_partition_edges.items()):
            start = time.perf_counter()
            partition_set = set(td.partition_vertices[pid])
            changed = update_shortcuts_bottom_up(
                self.contraction,
                self.graph,
                edges,
                restrict_to=partition_set,
                escaped_out=escaped,
            )
            partition_changed[pid] = changed
            partition_times.append(time.perf_counter() - start)
        self._emit_stage(report,
            StageTiming(
                "partition_shortcut_update", sum(partition_times), parallel_times=partition_times
            )
        )

        with Timer() as timer:
            overlay_changed_shortcuts = update_shortcuts_bottom_up(
                self.contraction,
                self.graph,
                overlay_edges,
                restrict_to=td.overlay_vertices,
                seed_vertices=sorted(escaped),
            )
        self._emit_stage(report, StageTiming("overlay_shortcut_update", timer.seconds))

        # U-Stage 3: overlay index (label) update.
        with Timer() as timer:
            overlay_changed_labels = self.labels.update_top_down(
                overlay_changed_shortcuts.keys(), allowed=td.overlay_vertices
            )
        self._emit_stage(report, StageTiming("overlay_label_update", timer.seconds))

        # Decide which partitions the parallel stages must touch.
        affected_post: List[int] = []
        affected_cross: List[int] = []
        new_boundary_distances: Dict[int, Dict[Tuple[int, int], float]] = {}
        for pid in range(td.num_partitions):
            has_local_changes = bool(partition_changed.get(pid))
            distances = self._compute_boundary_distances(pid)
            new_boundary_distances[pid] = distances
            boundary_changed = distances != self.boundary_distances[pid]
            if has_local_changes or boundary_changed:
                affected_post.append(pid)
            ancestors_changed = any(
                a in overlay_changed_labels for a in tree.ancestors[td.roots[pid]][:-1]
            )
            if has_local_changes or ancestors_changed:
                affected_cross.append(pid)

        # U-Stage 4: post-boundary index update (partitions in parallel).
        post_times: List[float] = []
        for pid in affected_post:
            start = time.perf_counter()
            self.boundary_distances[pid] = new_boundary_distances[pid]
            self._update_post_boundary_partition(pid)
            post_times.append(time.perf_counter() - start)
        self._emit_stage(report,
            StageTiming("post_boundary_update", sum(post_times), parallel_times=post_times)
        )

        # U-Stage 5: cross-boundary index update (partitions in parallel).
        cross_times: List[float] = []
        for pid in affected_cross:
            start = time.perf_counter()
            self._update_cross_boundary_partition(pid)
            cross_times.append(time.perf_counter() - start)
        self._emit_stage(report,
            StageTiming("cross_boundary_update", sum(cross_times), parallel_times=cross_times)
        )

        self.last_report = report
        return report

    def _compute_boundary_distances(self, pid: int) -> Dict[Tuple[int, int], float]:
        """All-pair boundary distances of partition ``pid`` from the overlay labels."""
        boundary = self.td.boundary[pid]
        distances: Dict[Tuple[int, int], float] = {}
        for i, b1 in enumerate(boundary):
            for b2 in boundary[i + 1 :]:
                d = self.labels.query(b1, b2)
                distances[(b1, b2)] = d
                distances[(b2, b1)] = d
        return distances

    def _update_post_boundary_partition(self, pid: int) -> None:
        """Recompute the boundary arrays and in-partition label entries of one partition.

        Mirrors Algorithm 4: a top-down pass over the partition subtree where
        overlay neighbours are resolved through the boundary distance table /
        boundary arrays instead of through (possibly stale) cross-boundary
        label entries.
        """
        tree = self.tree
        td = self.td
        depth = tree.depth
        boundary = td.boundary[pid]
        position = self.boundary_position[pid]
        distances = self.boundary_distances[pid]
        overlay = td.overlay_vertices
        root = td.roots[pid]
        root_depth = depth[root]
        shortcuts = self.contraction.shortcuts

        stack = [root]
        order: List[int] = []
        while stack:
            v = stack.pop()
            order.append(v)
            stack.extend(tree.children[v])

        for v in order:
            neighbors = tree.neighbors(v)
            sc = shortcuts[v]
            # Boundary array X(v).disB.
            new_disB = []
            for j, b in enumerate(boundary):
                best = INF
                for x in neighbors:
                    if x in overlay:
                        d = 0.0 if x == b else distances.get((x, b), INF)
                    else:
                        d = self.disB[x][j]
                    candidate = sc[x] + d
                    if candidate < best:
                        best = candidate
                if v == b:  # pragma: no cover - boundary vertices are overlay, not in-partition
                    best = 0.0
                new_disB.append(best)
            self.disB[v] = new_disB

            # In-partition distance-array entries (depth >= root_depth).
            anc = tree.ancestors[v]
            dis_v = self.labels.dis[v]
            for j in range(root_depth, len(anc) - 1):
                ancestor = anc[j]
                best = INF
                for x in neighbors:
                    if x in overlay:
                        d = self.disB[ancestor][position[x]]
                    elif depth[x] > j:
                        d = self.labels.dis[x][j]
                    else:
                        d = self.labels.dis[ancestor][depth[x]]
                    candidate = sc[x] + d
                    if candidate < best:
                        best = candidate
                dis_v[j] = best
            dis_v[len(anc) - 1] = 0.0

    def _update_cross_boundary_partition(self, pid: int) -> None:
        """Recompute the overlay-ancestor label entries of one partition (top-down)."""
        tree = self.tree
        td = self.td
        depth = tree.depth
        root = td.roots[pid]
        root_depth = depth[root]
        shortcuts = self.contraction.shortcuts

        stack = [root]
        order: List[int] = []
        while stack:
            v = stack.pop()
            order.append(v)
            stack.extend(tree.children[v])

        for v in order:
            neighbors = tree.neighbors(v)
            sc = shortcuts[v]
            anc = tree.ancestors[v]
            dis_v = self.labels.dis[v]
            for j in range(root_depth):
                ancestor = anc[j]
                best = INF
                for x in neighbors:
                    if depth[x] > j:
                        d = self.labels.dis[x][j]
                    else:
                        d = self.labels.dis[ancestor][depth[x]]
                    candidate = sc[x] + d
                    if candidate < best:
                        best = candidate
                dis_v[j] = best

    # ------------------------------------------------------------------
    # Introspection and throughput metadata
    # ------------------------------------------------------------------
    def vertex_partition(self, v: int) -> Optional[int]:
        if self.td is None:
            return None
        return self.td.partition_of(v)

    def index_size(self) -> int:
        self._require_built()
        boundary_entries = sum(len(values) for values in self.disB.values())
        return (
            self.labels.label_entry_count()
            + self.contraction.shortcut_count()
            + boundary_entries
        )

    # ------------------------------------------------------------------
    # Snapshot persistence (see repro.store)
    # ------------------------------------------------------------------
    def to_state(self, io) -> Dict[str, object]:
        """Contraction, amalgamated labels, TD roots and boundary arrays.

        Only the TD-partitioning's root list is stored: the subtree members,
        boundaries and overlay set are fully determined by the roots and the
        tree, which :meth:`TDPartitioning.from_roots` rebuilds on load.
        """
        from repro.store import codec

        self._require_built()
        disB_verts = list(self.disB)
        disB_indptr = [0]
        disB_data: List[float] = []
        for v in disB_verts:
            disB_data.extend(self.disB[v])
            disB_indptr.append(len(disB_data))
        return {
            "contraction": codec.pack_contraction(self.contraction, io),
            "labels": codec.pack_labels(self.labels, io),
            "td_roots": io.put_ints(self.td.roots),
            "disB_verts": io.put_ints(disB_verts),
            "disB_indptr": io.put_ints(disB_indptr),
            "disB_data": io.put_floats(disB_data),
            "boundary_distances": [
                codec.pack_pair_table(table, io) for table in self.boundary_distances
            ],
            "build_breakdown": dict(self.build_breakdown),
        }

    def from_state(self, state: Dict[str, object], io) -> None:
        from repro.store import codec

        self.contraction = codec.unpack_contraction(state["contraction"], io)
        self.tree = TreeDecomposition.from_contraction(self.contraction)
        self.td = TDPartitioning.from_roots(self.tree, io.get_list(state["td_roots"]))
        self.labels = codec.unpack_labels(state["labels"], io, self.tree)
        self.boundary_position = [
            {b: j for j, b in enumerate(boundary)} for boundary in self.td.boundary
        ]
        verts = io.get_list(state["disB_verts"])
        indptr = io.get_list(state["disB_indptr"])
        data = io.get_list(state["disB_data"])
        self.disB = {
            v: data[indptr[i] : indptr[i + 1]] for i, v in enumerate(verts)
        }
        self.boundary_distances = [
            codec.unpack_pair_table(table, io) for table in state["boundary_distances"]
        ]
        self.build_breakdown = dict(state.get("build_breakdown", {}))

    def _kernel_exports(self):
        return {"labels": self._label_store}

    @property
    def overlay_vertex_count(self) -> int:
        """Number of overlay vertices (reported in the paper's Figure 18)."""
        self._require_built()
        return len(self.td.overlay_vertices)

    def stage_catalog(self) -> List[Dict[str, object]]:
        """Query stages in release order, with the update stage that releases each."""
        return [
            {
                "query_stage": PostMHLQueryStage.BIDIJKSTRA,
                "released_after": "edge_update",
                "query": self.query_bidijkstra,
            },
            {
                "query_stage": PostMHLQueryStage.PCH,
                "released_after": "overlay_shortcut_update",
                "query": self.query_pch,
            },
            {
                "query_stage": PostMHLQueryStage.POST_BOUNDARY,
                "released_after": "post_boundary_update",
                "query": self.query_post_boundary,
            },
            {
                "query_stage": PostMHLQueryStage.CROSS_BOUNDARY,
                "released_after": "cross_boundary_update",
                "query": self.query_cross_boundary,
            },
        ]


@register_spec
@dataclass(frozen=True)
class PostMHLSpec(IndexSpec):
    """Construction spec for the Post-partitioned Multi-stage Hub Labeling index."""

    method = "PostMHL"
    config_fields = {"bandwidth": "bandwidth", "expected_partitions": "expected_partitions"}

    #: ``τ`` — maximum boundary size allowed for a partition root.
    bandwidth: int = 12
    #: ``k_e`` — desired partition count for TD-partitioning.
    expected_partitions: int = 8
    #: Partition-size imbalance bounds (the paper uses 0.1 and 2).
    beta_lower: float = 0.1
    beta_upper: float = 2.0

    def create(self, graph: Graph) -> PostMHLIndex:
        return PostMHLIndex(
            graph,
            bandwidth=self.bandwidth,
            expected_partitions=self.expected_partitions,
            beta_lower=self.beta_lower,
            beta_upper=self.beta_upper,
        )
