"""Query/update stage definitions shared by the multi-stage PSP indexes.

Both PMHL (Section V, Figure 7) and PostMHL (Section VI, Figure 9) interleave
index maintenance with query processing: as soon as an update stage finishes,
a faster query algorithm becomes available.  The enums here name those stages;
the helper :func:`timed_label_update_by_root` performs a top-down label update
one affected branch root at a time, recording each root's wall-clock time so
the throughput machinery can model the paper's one-thread-per-branch-root
parallelisation.
"""

from __future__ import annotations

import time
from enum import IntEnum
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.algorithms.dijkstra import bidijkstra
from repro.base import DistanceIndex
from repro.labeling.h2h import H2HLabels

#: Sentinel ``released_after`` value meaning "after the last update stage".
LAST_STAGE = "__last__"


class PMHLQueryStage(IntEnum):
    """Query stages of PMHL in increasing efficiency (Figure 7)."""

    BIDIJKSTRA = 1
    PCH = 2
    NO_BOUNDARY = 3
    POST_BOUNDARY = 4
    CROSS_BOUNDARY = 5


class PostMHLQueryStage(IntEnum):
    """Query stages of PostMHL in increasing efficiency (Figure 9)."""

    BIDIJKSTRA = 1
    PCH = 2
    POST_BOUNDARY = 3
    CROSS_BOUNDARY = 4


#: Update-stage names of PMHL, in execution order.
PMHL_UPDATE_STAGES = (
    "edge_update",
    "partition_shortcut_update",
    "overlay_shortcut_update",
    "partition_label_update",
    "overlay_label_update",
    "post_boundary_update",
    "cross_boundary_update",
)

#: Update-stage names of PostMHL, in execution order.
POSTMHL_UPDATE_STAGES = (
    "edge_update",
    "partition_shortcut_update",
    "overlay_shortcut_update",
    "overlay_label_update",
    "post_boundary_update",
    "cross_boundary_update",
)


def stage_entries(index: DistanceIndex) -> List[Dict[str, object]]:
    """Query stages of an index in release order.

    Multi-stage indexes provide them via ``stage_catalog``; plain indexes
    (DCH, DH2H, TOAIN, …) get the paper's protocol synthesised for them —
    BiDijkstra answers queries while their index is stale, the native query
    takes over once the whole update completes (:data:`LAST_STAGE`).  This is
    the single source of the stage table consumed by both the analytic
    evaluator (``repro.throughput.evaluator``) and the live router
    (``repro.serving.router``).
    """
    catalog = getattr(index, "stage_catalog", None)
    if callable(catalog):
        return list(catalog())
    return [
        {
            "query_stage": "bidijkstra_fallback",
            "released_after": "edge_update",
            "query": lambda s, t: bidijkstra(index.graph, s, t),
        },
        {
            "query_stage": "native",
            "released_after": LAST_STAGE,
            "query": index.query,
        },
    ]


def timed_label_update_by_root(
    labels: H2HLabels,
    affected: Iterable[int],
    allowed: Optional[Set[int]] = None,
) -> Tuple[Set[int], List[float]]:
    """Top-down label update split per affected branch root, with per-root timings.

    The paper allocates one thread per branch root during the cross-boundary
    label update (U-Stage 5 of PMHL); reporting per-root times lets the
    simulated-parallelism cost model reproduce that behaviour.

    Returns
    -------
    tuple
        ``(changed_vertices, per_root_seconds)``.
    """
    tree = labels.tree
    affected_set = {v for v in affected if v in labels.dis}
    if allowed is not None:
        affected_set &= allowed
    changed: Set[int] = set()
    per_root_seconds: List[float] = []
    if not affected_set:
        return changed, per_root_seconds

    roots = tree.branch_roots(sorted(affected_set))
    # Group affected vertices by the branch root whose subtree contains them.
    groups: Dict[int, List[int]] = {root: [] for root in roots}
    for v in affected_set:
        for root in roots:
            if tree.same_component(root, v) and tree.is_ancestor(root, v):
                groups[root].append(v)
                break
    for root, group in groups.items():
        start = time.perf_counter()
        changed |= labels.update_top_down(group, allowed=allowed)
        per_root_seconds.append(time.perf_counter() - start)
    return changed, per_root_seconds
