"""Cross-boundary strategy: one global 2-hop index stitched from PSP pieces.

Section IV-A of the paper introduces the cross-boundary strategy: concatenate
the overlay and partition indexes *ahead of time* into a single global 2-hop
index ``L*`` so cross-partition queries no longer pay for per-query distance
concatenation.  Section V-C realises ``L*`` by *tree decomposition
aggregation* (Algorithm 1): the partition trees and the overlay tree are
merged into one cross-boundary tree ``T*`` whose node relationships prioritise
the overlay tree.

This module implements that aggregation by composing a single
:class:`~repro.treedec.mde.ContractionResult` out of the partition and overlay
contractions:

* a non-boundary vertex keeps the neighbour set / shortcut array of its
  partition contraction,
* a boundary vertex keeps those of the overlay contraction,

which — because the partition and overlay contractions are restrictions of one
global boundary-first order (Lemma 3) — is exactly what a single global
contraction of the road network under that order would produce.  The shortcut
dictionaries are shared *by reference*, so partition/overlay shortcut
maintenance automatically keeps the cross-boundary shortcut arrays fresh and
U-Stage 5 only has to refresh distance labels.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.labeling.h2h import H2HLabels
from repro.partitioning.base import Partitioning
from repro.psp.overlay import OverlayIndex
from repro.psp.partition_family import PartitionIndexFamily
from repro.treedec.mde import ContractionResult
from repro.treedec.tree import TreeDecomposition


def compose_cross_boundary_contraction(
    partitioning: Partitioning,
    order: Sequence[int],
    family: PartitionIndexFamily,
    overlay: OverlayIndex,
) -> ContractionResult:
    """Compose the global cross-boundary contraction from PSP building blocks.

    The returned :class:`ContractionResult` shares the shortcut dictionaries of
    the partition and overlay contractions by reference; it carries no
    supporter records because its shortcuts are never maintained directly.
    """
    boundary = partitioning.all_boundary()
    composed = ContractionResult()
    composed.order = list(order)
    composed.rank = {v: i for i, v in enumerate(composed.order)}
    for v in composed.order:
        if v in boundary:
            source = overlay.contraction
        else:
            source = family.contractions[partitioning.partition_of(v)]
        composed.neighbors[v] = source.neighbors[v]
        composed.shortcuts[v] = source.shortcuts[v]
    return composed


def build_cross_boundary_index(
    partitioning: Partitioning,
    order: Sequence[int],
    family: PartitionIndexFamily,
    overlay: OverlayIndex,
) -> Tuple[ContractionResult, TreeDecomposition, H2HLabels]:
    """Build the cross-boundary tree ``T*`` and labels ``L*`` (Algorithm 1).

    Returns the composed contraction, the aggregated tree decomposition and the
    fully-built global distance labels.
    """
    composed = compose_cross_boundary_contraction(partitioning, order, family, overlay)
    tree = TreeDecomposition.from_contraction(composed, allow_forest=True)
    labels = H2HLabels(tree)
    labels.build()
    return composed, tree, labels


def cross_boundary_label_size(labels: H2HLabels) -> int:
    """Number of distance-label entries of the cross-boundary index."""
    return labels.label_entry_count()
