"""The paper's primary contribution: cross-boundary strategy, PMHL, PostMHL."""

from repro.core.cross_boundary import (
    build_cross_boundary_index,
    compose_cross_boundary_contraction,
)
from repro.core.pmhl import PMHLIndex
from repro.core.postmhl import PostMHLIndex
from repro.core.stages import (
    PMHL_UPDATE_STAGES,
    POSTMHL_UPDATE_STAGES,
    PMHLQueryStage,
    PostMHLQueryStage,
    timed_label_update_by_root,
)

__all__ = [
    "PMHLIndex",
    "PostMHLIndex",
    "PMHLQueryStage",
    "PostMHLQueryStage",
    "PMHL_UPDATE_STAGES",
    "POSTMHL_UPDATE_STAGES",
    "build_cross_boundary_index",
    "compose_cross_boundary_contraction",
    "timed_label_update_by_root",
]
