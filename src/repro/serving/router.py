"""Stage-aware query routing with per-stage validity epochs.

The multi-stage indexes publish their query stages through
``stage_catalog()`` (see :mod:`repro.core.stages`): each catalog entry names
the update stage whose completion *releases* that query stage.  The router
turns the catalog into a live dispatch table — every query stage carries the
epoch (update-batch count) at which it last became consistent, and a query at
epoch ``e`` is dispatched to the most efficient stage whose
``valid_epoch == e``.

Plain indexes (DCH, DH2H, TOAIN, …) have no catalog; exactly as the paper
treats them, :func:`repro.core.stages.stage_entries` synthesises a two-stage
table for them — an index-free BiDijkstra fallback released by the on-spot
edge refresh, and the native query released once the whole update completes.
That same function feeds the analytic evaluator, so the live and modelled
stage tables cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.base import DistanceIndex
from repro.core.stages import LAST_STAGE, stage_entries

__all__ = ["LAST_STAGE", "RoutedStage", "StageRouter", "stage_entries"]


@dataclass
class RoutedStage:
    """One query stage with its live validity epoch."""

    name: str
    released_after: str
    query: Callable[[int, int], float]
    #: Position in the catalog — higher means more efficient.
    position: int
    #: True for every stage that reads index structures; the BiDijkstra stage
    #: (position 0) reads only the live graph and is guarded separately.
    uses_index: bool
    #: Epoch at which this stage last became consistent.
    valid_epoch: int = 0


class StageRouter:
    """Dispatch table mapping the current epoch to the fastest valid stage.

    The engine drives the router from the update-stage listener: the first
    stage of every batch (the on-spot edge refresh) calls :meth:`begin_epoch`,
    each later stage completion calls :meth:`release`, and :meth:`complete`
    runs once the whole batch is installed.  All three are called from the
    maintenance thread while it holds the corresponding write lock, so no
    internal locking is needed beyond the engine's epoch protocol.
    """

    def __init__(self, index: DistanceIndex):
        self.index = index
        self._stages: List[RoutedStage] = [
            RoutedStage(
                # Stage catalogs use IntEnum members; prefer their symbolic name.
                name=getattr(entry["query_stage"], "name", None) or str(entry["query_stage"]),
                released_after=str(entry["released_after"]),
                query=entry["query"],  # type: ignore[arg-type]
                position=position,
                uses_index=position > 0,
                valid_epoch=0,
            )
            for position, entry in enumerate(stage_entries(index))
        ]

    # ------------------------------------------------------------------
    # Epoch transitions (maintenance thread)
    # ------------------------------------------------------------------
    def begin_epoch(self, epoch: int) -> None:
        """The edge refresh completed: only the live-graph stage is valid."""
        self._stages[0].valid_epoch = epoch

    def release(self, update_stage: str, epoch: int) -> None:
        """An update stage completed; release the query stages it unlocks."""
        for stage in self._stages:
            if stage.uses_index and stage.released_after == update_stage:
                stage.valid_epoch = epoch

    def complete(self, epoch: int) -> None:
        """The whole batch is installed: every stage is valid at ``epoch``."""
        for stage in self._stages:
            stage.valid_epoch = epoch

    # ------------------------------------------------------------------
    # Dispatch (query threads)
    # ------------------------------------------------------------------
    @property
    def stages(self) -> List[RoutedStage]:
        return self._stages

    @property
    def graph_stage(self) -> RoutedStage:
        """The index-free stage that reads only the live graph."""
        return self._stages[0]

    def best_valid_index_stage(self, epoch: int) -> Optional[RoutedStage]:
        """Most efficient index-backed stage consistent at ``epoch``."""
        for stage in reversed(self._stages):
            if stage.uses_index and stage.valid_epoch == epoch:
                return stage
        return None

    def best_valid_stage(self, epoch: int) -> Optional[RoutedStage]:
        """Most efficient stage (of any kind) consistent at ``epoch``."""
        for stage in reversed(self._stages):
            if stage.valid_epoch == epoch:
                return stage
        return None

    def describe(self) -> List[Dict[str, object]]:
        """Introspection rows (stage name, release trigger, validity epoch)."""
        return [
            {
                "stage": stage.name,
                "released_after": stage.released_after,
                "valid_epoch": stage.valid_epoch,
                "uses_index": stage.uses_index,
            }
            for stage in self._stages
        ]
