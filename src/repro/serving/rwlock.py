"""A reader-writer lock for the serving engine's epoch protocol.

Queries are readers (many may run at once); the maintenance worker is the
single writer.  The lock is *read-preferring*: readers are admitted whenever
no writer holds the lock, and a writer waits until every active reader has
drained.  Writer starvation is not a practical concern here because queries
are short and the engine's query pool is small, while the writer re-acquires
the lock at every update-stage boundary anyway (see
``repro.serving.engine.ServingEngine``); the brief windows between stages are
exactly where queued readers are meant to slip in.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional


class RWLock:
    """Read-preferring reader-writer lock built on a single condition variable."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._active_readers = 0
        self._writer_active = False

    # ------------------------------------------------------------------
    # Reader side
    # ------------------------------------------------------------------
    def acquire_read(self, blocking: bool = True, timeout: Optional[float] = None) -> bool:
        """Acquire the lock in shared mode; returns ``False`` on timeout/contention."""
        with self._cond:
            if not blocking:
                if self._writer_active:
                    return False
                self._active_readers += 1
                return True
            acquired = self._cond.wait_for(lambda: not self._writer_active, timeout)
            if not acquired:
                return False
            self._active_readers += 1
            return True

    def release_read(self) -> None:
        with self._cond:
            if self._active_readers <= 0:
                raise RuntimeError("release_read without a matching acquire_read")
            self._active_readers -= 1
            if self._active_readers == 0:
                self._cond.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # ------------------------------------------------------------------
    # Writer side
    # ------------------------------------------------------------------
    def acquire_write(self, timeout: Optional[float] = None) -> bool:
        """Acquire the lock exclusively; returns ``False`` on timeout."""
        with self._cond:
            acquired = self._cond.wait_for(
                lambda: not self._writer_active and self._active_readers == 0, timeout
            )
            if not acquired:
                return False
            self._writer_active = True
            return True

    def release_write(self) -> None:
        with self._cond:
            if not self._writer_active:
                raise RuntimeError("release_write without a matching acquire_write")
            self._writer_active = False
            self._cond.notify_all()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # ------------------------------------------------------------------
    # Introspection (primarily for tests)
    # ------------------------------------------------------------------
    @property
    def active_readers(self) -> int:
        with self._cond:
            return self._active_readers

    @property
    def writer_active(self) -> bool:
        with self._cond:
            return self._writer_active
