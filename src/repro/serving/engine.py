"""The live concurrent query-serving engine.

:class:`ServingEngine` turns any :class:`~repro.base.DistanceIndex` into a
running service: queries execute on the calling thread (or a small thread
pool via :meth:`submit`) while update batches install on a dedicated
maintenance worker — operationalising the paper's core idea that the
multi-stage indexes keep answering queries, with progressively faster
algorithms, *while* they are being maintained.

Consistency model (see DESIGN.md §5)
------------------------------------

The engine counts **epochs**: epoch ``e`` is the graph state after ``e``
update batches.  Two reader-writer locks split the state by what each query
stage reads:

* the **graph lock** guards the live graph — held for writing only during the
  on-spot edge refresh (U-Stage 1), for reading by the index-free BiDijkstra
  stage;
* the **index lock** guards every index structure — held for writing for the
  remainder of ``apply_batch``, for reading by the index-backed query stages.

The update-stage listener installed on the index (see
:meth:`repro.base.DistanceIndex.set_stage_listener`) fires at every stage
boundary — the only points where the index structures are consistent.  The
first stage bumps the epoch, snapshots the graph, invalidates the affected
cache partitions and releases the graph lock (BiDijkstra serves the new epoch
from then on, concurrently with the remaining maintenance).  Every later
stage publishes its released query stage to the router and briefly reopens
the index lock so queued readers can use the newly released stage.  Readers
acquire the index lock *non-blocking*: while a stage is mutating they fall
back to BiDijkstra instead of queueing behind the writer — exactly the
paper's query-processing timeline, with real threads instead of a simulated
one.

Every answer therefore equals a fresh Dijkstra run on the graph snapshot of
the epoch it reports — the invariant the serving tests enforce.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro import obs
from repro.base import DistanceIndex, QueryPair, StageTiming, UpdateReport
from repro.exceptions import (
    EngineStoppedError,
    QueryRejectedError,
    ServingError,
    VertexNotFoundError,
)
from repro.graph.graph import Graph
from repro.graph.updates import UpdateBatch
from repro.serving.admission import AdmissionController, AlwaysAdmit
from repro.serving.cache import EpochDistanceCache
from repro.serving.metrics import ServingMetrics
from repro.serving.router import StageRouter
from repro.serving.rwlock import RWLock

_STOP = object()


@dataclass(frozen=True)
class QueryResult:
    """One served query: the answer plus the serving context."""

    source: int
    target: int
    distance: float
    #: Epoch (number of installed update batches) the answer is consistent with.
    epoch: int
    #: Name of the query stage that produced the answer (``"cache"`` for hits).
    stage: str
    latency_seconds: float
    from_cache: bool = False


class ServingEngine:
    """Serve concurrent shortest-distance queries over a dynamic index.

    Parameters
    ----------
    index:
        Any :class:`~repro.base.DistanceIndex`; built on demand if needed.
    response_qos:
        Optional ``R*_q`` bound in seconds — enables Lemma-1-style admission
        control (:mod:`repro.serving.admission`).  ``None`` admits everything.
    query_threads:
        Pool size for the asynchronous :meth:`submit` API.
    cache_capacity:
        LRU distance-cache capacity; ``0`` disables caching.
    snapshot_limit:
        How many per-epoch graph snapshots to retain for :meth:`graph_at`
        (used by correctness oracles); ``0`` disables snapshotting.
    stage_grace_seconds:
        How long the maintenance worker leaves the index lock open at each
        stage boundary so queued readers can use the just-released stage.
    """

    def __init__(
        self,
        index: DistanceIndex,
        response_qos: Optional[float] = None,
        query_threads: int = 2,
        cache_capacity: int = 4096,
        snapshot_limit: int = 16,
        stage_grace_seconds: float = 0.0005,
        admission: Optional[AdmissionController] = None,
    ) -> None:
        if query_threads < 1:
            raise ServingError(f"query_threads must be >= 1, got {query_threads}")
        if not index.is_built:
            index.build()
        self.index = index
        self.router = StageRouter(index)
        self.metrics = ServingMetrics()
        self.cache = EpochDistanceCache(cache_capacity) if cache_capacity > 0 else None
        if admission is not None:
            self.admission = admission
        elif response_qos is not None:
            self.admission = AdmissionController(response_qos)
        else:
            self.admission = AlwaysAdmit()
        self.response_qos = response_qos
        self.stage_grace_seconds = stage_grace_seconds
        self.update_reports: List[UpdateReport] = []
        #: Exceptions raised by failed batch installs.  A failed batch may
        #: leave the graph partially updated (``apply_batch`` is not
        #: transactional); the epoch/oracle guarantee covers successful
        #: installs, and the worker keeps draining the queue regardless.
        self.maintenance_errors: List[Exception] = []

        self._graph_rw = RWLock()
        self._index_rw = RWLock()
        self._state = threading.Lock()
        self._epoch = 0
        self._inflight = 0
        self._query_threads = query_threads
        self._pool: Optional[ThreadPoolExecutor] = None
        self._worker: Optional[threading.Thread] = None
        self._queue: "queue.Queue" = queue.Queue()
        self._pending = 0
        self._pending_cond = threading.Condition()
        self._running = False

        self._snapshot_limit = snapshot_limit
        self._snapshots: "OrderedDict[int, Graph]" = OrderedDict()
        if snapshot_limit > 0:
            self._snapshots[0] = index.graph.copy()

        if obs.is_enabled():
            self._register_obs_gauges()

    def _register_obs_gauges(self) -> None:
        """Re-export engine/cache/admission state as registry gauges.

        Gauges read live callbacks at exposition time.  The registry is
        process-wide, so with several engines the most recently constructed
        one owns these series (last registration wins).
        """
        registry = obs.registry()
        registry.gauge(
            "repro_serving_epoch", "Current serving epoch (installed batches)"
        ).set_function(lambda: self._epoch)
        registry.gauge(
            "repro_serving_inflight", "Queries currently executing"
        ).set_function(lambda: self._inflight)
        registry.gauge(
            "repro_serving_pending_batches", "Update batches queued or installing"
        ).set_function(lambda: self.pending_batches)
        if self.cache is not None:
            for key in (
                "size", "hits", "misses", "hit_rate",
                "stale_rejections", "invalidated", "evictions",
            ):
                registry.gauge(
                    f"repro_serving_cache_{key}", f"Distance cache {key}"
                ).set_function(lambda k=key: self.cache.snapshot()[k])
        sustainable = getattr(self.admission, "sustainable_rate", None)
        if callable(sustainable):
            registry.gauge(
                "repro_serving_admission_sustainable_rate",
                "Lemma-1 sustainable arrival rate under the configured QoS",
            ).set_function(sustainable)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServingEngine":
        """Start the maintenance worker and the query pool (idempotent)."""
        if self._running:
            return self
        self._running = True
        self._pool = ThreadPoolExecutor(
            max_workers=self._query_threads, thread_name_prefix="repro-serve"
        )
        self._worker = threading.Thread(
            target=self._maintenance_loop, name="repro-maintain", daemon=True
        )
        self._worker.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop the engine; with ``drain`` wait for queued batches first."""
        if not self._running:
            return
        if drain:
            self.wait_for_maintenance()
        self._running = False
        self._queue.put(_STOP)
        if self._worker is not None:
            self._worker.join()
            self._worker = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ServingEngine":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def is_running(self) -> bool:
        return self._running

    # ------------------------------------------------------------------
    # Epochs and snapshots
    # ------------------------------------------------------------------
    @property
    def current_epoch(self) -> int:
        return self._epoch

    @property
    def graph(self) -> Graph:
        """The live served graph (the index's graph at the current epoch)."""
        return self.index.graph

    def export_snapshot(
        self, path: str, timeout: Optional[float] = None, **save_kwargs
    ) -> int:
        """Persist the served index as an epoch-consistent on-disk snapshot.

        The export runs under *read* acquisitions of both engine locks, so it
        proceeds concurrently with queries but never alongside an update
        batch.  Holding the read locks alone is not enough: the maintenance
        worker reopens the index lock at every stage boundary (the grace
        windows), where the structures are only *stage*-consistent.  The loop
        below therefore re-acquires until it holds both locks with zero
        batches pending — i.e. at a closed epoch — and only then serializes.
        Returns the epoch the snapshot captured; the manifest records it
        under ``extras.epoch``.  Works on a stopped engine too.

        Under a sustained update stream a quiescent point may never arrive on
        its own; pass ``timeout`` (seconds) to bound the wait — on expiry a
        :class:`~repro.exceptions.ServingError` is raised and nothing is
        written.

        The write is atomic (staging directory + rename): a concurrently
        starting cluster worker warm-starting from ``path`` can never mmap a
        half-written snapshot.  ``save_kwargs`` forward to
        :func:`repro.store.save_index` — pass ``generation=`` to stamp the
        manifest field the cluster's republish lifecycle reads.
        """
        from repro.store import save_index

        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            # Pending batches always drain: queued items precede the _STOP
            # sentinel, so the worker finishes them even during/after a
            # ``stop(drain=False)``, and ``submit_batch`` rejects new work on
            # a stopped engine.  Only zero-pending is an acceptable export
            # point — ``_running`` alone says nothing about a batch the
            # worker already dequeued.
            remaining = None if deadline is None else deadline - time.monotonic()
            if not self.wait_for_maintenance(remaining):
                raise ServingError(
                    f"export_snapshot timed out after {timeout}s waiting for "
                    "the update stream to quiesce"
                )
            self._index_rw.acquire_read()
            self._graph_rw.acquire_read()
            if self.pending_batches == 0:
                break
            # A batch slipped in between the drain and the lock acquisition
            # (we may be inside one of its grace windows) — retry.
            self._graph_rw.release_read()
            self._index_rw.release_read()
        try:
            epoch = self._epoch
            extras = dict(save_kwargs.pop("extras", None) or {})
            extras["epoch"] = epoch
            save_kwargs.setdefault("atomic", True)
            save_index(self.index, path, extras=extras, **save_kwargs)
        finally:
            self._graph_rw.release_read()
            self._index_rw.release_read()
        return epoch

    @classmethod
    def from_snapshot(
        cls, path: str, graph: Optional[Graph] = None, **engine_kwargs
    ) -> "ServingEngine":
        """Warm-start an engine from a snapshot instead of rebuilding.

        ``load_index`` reconstructs (or fingerprint-verifies) the graph and
        reattaches the frozen kernel stores, so the engine is ready to serve
        its first query without paying the construction cost the snapshot
        captured.  ``engine_kwargs`` are forwarded to the constructor.
        """
        from repro.store import load_index

        return cls(load_index(path, graph=graph), **engine_kwargs)

    def graph_at(self, epoch: int) -> Graph:
        """Graph snapshot of ``epoch`` (for per-epoch correctness oracles)."""
        with self._state:
            snapshot = self._snapshots.get(epoch)
        if snapshot is None:
            raise ServingError(
                f"no graph snapshot retained for epoch {epoch} "
                f"(snapshot_limit={self._snapshot_limit})"
            )
        return snapshot

    # ------------------------------------------------------------------
    # Maintenance path
    # ------------------------------------------------------------------
    def submit_batch(self, batch: UpdateBatch) -> None:
        """Queue an update batch for the maintenance worker."""
        if not self._running:
            raise EngineStoppedError("submit_batch on a stopped engine; call start()")
        with self._pending_cond:
            self._pending += 1
        self._queue.put(batch)

    def wait_for_maintenance(self, timeout: Optional[float] = None) -> bool:
        """Block until every queued batch is fully installed."""
        with self._pending_cond:
            return self._pending_cond.wait_for(lambda: self._pending == 0, timeout)

    @property
    def pending_batches(self) -> int:
        with self._pending_cond:
            return self._pending

    def _maintenance_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                break
            try:
                self._install(item)
            except Exception as exc:  # keep the worker alive for later batches
                self.maintenance_errors.append(exc)
            finally:
                with self._pending_cond:
                    self._pending -= 1
                    self._pending_cond.notify_all()

    def _install(self, batch: UpdateBatch) -> None:
        """Install one batch under the epoch protocol (maintenance thread)."""
        index = self.index
        pending_epoch = self._epoch + 1
        affected = {index.vertex_partition(u.u) for u in batch}
        affected |= {index.vertex_partition(u.v) for u in batch}

        started = time.perf_counter()
        self._index_rw.acquire_write()
        self._graph_rw.acquire_write()
        graph_locked = True
        epoch_open = False

        def on_stage(timing: StageTiming) -> None:
            nonlocal graph_locked, epoch_open
            if not epoch_open:
                # First stage of every index: the on-spot edge refresh.  The
                # graph now *is* epoch ``pending_epoch``; publish it while
                # still holding both write locks so no query can observe a
                # half-open epoch.
                epoch_open = True
                with self._state:
                    self._epoch = pending_epoch
                    if self._snapshot_limit > 0:
                        self._snapshots[pending_epoch] = index.graph.copy()
                        while len(self._snapshots) > self._snapshot_limit:
                            self._snapshots.popitem(last=False)
                # Key the frozen query kernels to the serving epoch: every
                # store frozen from here on belongs to ``pending_epoch`` and
                # is frozen at most once per stage (apply_batch also
                # invalidates at entry; this call is the engine-side guard
                # for indexes installed behind custom apply_batch wrappers).
                # Both write locks are held, so no reader can be mid-freeze.
                index.invalidate_kernels()
                self.router.begin_epoch(pending_epoch)
                if self.cache is not None:
                    self.cache.invalidate_partitions(affected)
                self._graph_rw.release_write()
                graph_locked = False
            else:
                self.router.release(timing.name, pending_epoch)
                # Reopen the index lock briefly: readers queued on the newly
                # released stage get a consistent window before the next
                # update stage starts mutating.
                self._index_rw.release_write()
                if self.stage_grace_seconds > 0:
                    time.sleep(self.stage_grace_seconds)
                self._index_rw.acquire_write()

        index.set_stage_listener(on_stage)
        try:
            with obs.span(
                "serving.install_batch", epoch=pending_epoch, updates=len(batch)
            ):
                report = index.apply_batch(batch)
            self.router.complete(pending_epoch)
        finally:
            index.set_stage_listener(None)
            if graph_locked:
                self._graph_rw.release_write()
            self._index_rw.release_write()
        self.update_reports.append(report)
        self.metrics.record_batch(time.perf_counter() - started)

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------
    def serve(self, source: int, target: int) -> QueryResult:
        """Serve one query on the calling thread.

        Raises :class:`~repro.exceptions.QueryRejectedError` when admission
        control sheds the query.
        """
        started = time.perf_counter()
        # Validate up front: the stage dispatchers skip the vertex checks of
        # ``index.query`` and would otherwise surface raw KeyErrors.
        graph = self.index.graph
        if not graph.has_vertex(source):
            raise VertexNotFoundError(source)
        if not graph.has_vertex(target):
            raise VertexNotFoundError(target)
        with self._state:
            inflight = self._inflight
        decision = self.admission.decide(inflight=inflight)
        if not decision.admitted:
            self.metrics.record_shed()
            raise QueryRejectedError(decision.reason)
        with self._state:
            self._inflight += 1
        try:
            result = self._dispatch(source, target, started)
        finally:
            with self._state:
                self._inflight -= 1
        self.metrics.record_query(result.stage, result.latency_seconds, result.from_cache)
        self.admission.observe_latency(result.latency_seconds)
        if obs.is_enabled():
            obs.record_span(
                "serving.serve", result.latency_seconds,
                stage=result.stage, epoch=result.epoch,
            )
        return result

    def query(self, source: int, target: int) -> float:
        """Distance-only convenience wrapper around :meth:`serve`."""
        return self.serve(source, target).distance

    def serve_batch(self, pairs: Iterable[QueryPair]) -> List[QueryResult]:
        """Serve a whole batch of queries against a *single* epoch snapshot.

        The batch plane counterpart of :meth:`serve`: one admission decision,
        one lock acquisition, one stage-routing decision, a bulk cache probe,
        and one amortised :meth:`~repro.base.DistanceIndex.query_many` call
        when the index's fastest stage is valid — instead of per-pair
        overhead for every query.  All returned results carry the same epoch,
        and every answer is consistent with that epoch's graph snapshot.

        Each result's ``latency_seconds`` is the batch wall latency amortised
        over the batch (wall / len(pairs)) — the per-query service cost.
        Metrics and the admission controller's service-time estimator consume
        that amortised figure, keeping them commensurable with scalar
        :meth:`serve` samples.

        Raises :class:`~repro.exceptions.QueryRejectedError` when admission
        control sheds the batch (the batch is admitted or shed as a whole).
        """
        started = time.perf_counter()
        pair_list: List[QueryPair] = list(pairs)
        graph = self.index.graph
        for source, target in pair_list:
            if not graph.has_vertex(source):
                raise VertexNotFoundError(source)
            if not graph.has_vertex(target):
                raise VertexNotFoundError(target)
        if not pair_list:
            return []
        with self._state:
            inflight = self._inflight
        decision = self.admission.decide(inflight=inflight)
        if not decision.admitted:
            self.metrics.record_shed()
            raise QueryRejectedError(decision.reason)
        with self._state:
            self._inflight += 1
        try:
            results = self._dispatch_batch(pair_list, started)
        finally:
            with self._state:
                self._inflight -= 1
        for result in results:
            self.metrics.record_query(result.stage, result.latency_seconds, result.from_cache)
        self.admission.observe_latency(results[-1].latency_seconds)
        if obs.is_enabled():
            obs.record_span(
                "serving.serve_batch", time.perf_counter() - started,
                size=len(results), stage=results[-1].stage, epoch=results[-1].epoch,
            )
        return results

    def query_batch(self, pairs: Iterable[QueryPair]) -> List[float]:
        """Distance-only convenience wrapper around :meth:`serve_batch`."""
        return [result.distance for result in self.serve_batch(pairs)]

    def serve_one_to_many(
        self, source: int, targets: Iterable[int]
    ) -> List[QueryResult]:
        """Serve one source against many targets at a single epoch.

        Rides the batch plane: :meth:`serve_batch` routes same-source pairs
        through :meth:`~repro.base.DistanceIndex.query_many`, whose
        source-grouped dispatch amortises into the index's native
        one-to-many path.
        """
        return self.serve_batch([(source, target) for target in targets])

    def query_one_to_many(self, source: int, targets: Iterable[int]) -> List[float]:
        """Distance-only convenience wrapper around :meth:`serve_one_to_many`."""
        return [result.distance for result in self.serve_one_to_many(source, targets)]

    def _dispatch_batch(
        self, pair_list: List[QueryPair], started: float
    ) -> List[QueryResult]:
        # Index-backed path: one non-blocking read acquisition pins the epoch
        # for the whole batch (the edge refresh needs both write locks).
        if self._index_rw.acquire_read(blocking=False):
            try:
                epoch = self._epoch
                stage = self.router.best_valid_index_stage(epoch)
                if stage is not None:
                    # The last catalog position is the index's native fastest
                    # stage — the one `query_many` amortises; intermediate
                    # stages answer through their scalar algorithm.
                    use_query_many = stage.position == len(self.router.stages) - 1
                    return self._answer_batch(
                        pair_list, epoch, stage, started, use_query_many
                    )
            finally:
                self._index_rw.release_read()

        # Live-graph fallback: the graph read lock pins the epoch instead.
        graph_stage = self.router.graph_stage
        with self._graph_rw.read_locked():
            epoch = self._epoch
            return self._answer_batch(pair_list, epoch, graph_stage, started, False)

    def _answer_batch(
        self,
        pair_list: List[QueryPair],
        epoch: int,
        stage,
        started: float,
        use_query_many: bool,
    ) -> List[QueryResult]:
        """Answer ``pair_list`` at ``epoch`` through ``stage`` (cache first)."""
        distances: List[Optional[float]] = [None] * len(pair_list)
        cached_flags = [False] * len(pair_list)
        misses: List[int] = []
        if self.cache is not None:
            for position, (source, target) in enumerate(pair_list):
                hit = self.cache.get(source, target, epoch)
                if hit is not None:
                    distances[position] = hit
                    cached_flags[position] = True
                else:
                    misses.append(position)
        else:
            misses = list(range(len(pair_list)))

        if misses:
            if use_query_many:
                answers = self.index.query_many(
                    [pair_list[position] for position in misses]
                )
            else:
                answers = [
                    stage.query(pair_list[position][0], pair_list[position][1])
                    for position in misses
                ]
            for position, distance in zip(misses, answers):
                distances[position] = distance
                source, target = pair_list[position]
                self._cache_put(source, target, distance, epoch)

        # Amortised per-query latency: feeding the whole-batch wall time into
        # the per-query metrics/admission estimator would inflate the service
        # estimate ~len(pair_list)-fold and shed batches spuriously.
        latency = (time.perf_counter() - started) / len(pair_list)
        return [
            QueryResult(
                source,
                target,
                distances[position],
                epoch,
                "cache" if cached_flags[position] else stage.name,
                latency,
                from_cache=cached_flags[position],
            )
            for position, (source, target) in enumerate(pair_list)
        ]

    def submit(self, source: int, target: int) -> "Future[QueryResult]":
        """Asynchronous :meth:`serve` on the engine's query pool."""
        if not self._running or self._pool is None:
            raise EngineStoppedError("submit on a stopped engine; call start()")
        return self._pool.submit(self.serve, source, target)

    def _dispatch(self, source: int, target: int, started: float) -> QueryResult:
        # 1. Cache — the (distance, epoch) pair is internally consistent even
        #    if the epoch advances concurrently: the answer linearises just
        #    before the newer batch.
        if self.cache is not None:
            epoch = self._epoch
            cached = self.cache.get(source, target, epoch)
            if cached is not None:
                return QueryResult(
                    source, target, cached, epoch,
                    "cache", time.perf_counter() - started, from_cache=True,
                )

        # 2. Index-backed stages.  Non-blocking: while an update stage is
        #    mutating the structures we fall back to the live graph instead of
        #    queueing behind the writer.  Holding the read lock pins the
        #    epoch (the edge refresh needs both write locks).
        if self._index_rw.acquire_read(blocking=False):
            try:
                epoch = self._epoch
                stage = self.router.best_valid_index_stage(epoch)
                if stage is not None:
                    distance = stage.query(source, target)
                    self._cache_put(source, target, distance, epoch)
                    return QueryResult(
                        source, target, distance, epoch,
                        stage.name, time.perf_counter() - started,
                    )
            finally:
                self._index_rw.release_read()

        # 3. Live-graph fallback (Q-Stage 1).  Blocks only for the duration
        #    of an on-spot edge refresh.
        graph_stage = self.router.graph_stage
        with self._graph_rw.read_locked():
            epoch = self._epoch
            distance = graph_stage.query(source, target)
        self._cache_put(source, target, distance, epoch)
        return QueryResult(
            source, target, distance, epoch,
            graph_stage.name, time.perf_counter() - started,
        )

    def _cache_put(self, source: int, target: int, distance: float, epoch: int) -> None:
        if self.cache is None:
            return
        tags = (self.index.vertex_partition(source), self.index.vertex_partition(target))
        self.cache.put(source, target, distance, epoch, tags)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """One merged snapshot of metrics, cache, router and epoch state."""
        snapshot = self.metrics.snapshot()
        snapshot["epoch"] = self._epoch
        snapshot["qps"] = self.metrics.qps()
        snapshot["lifetime_qps"] = self.metrics.lifetime_qps()
        snapshot["stages"] = self.router.describe()
        snapshot["maintenance_errors"] = [repr(exc) for exc in self.maintenance_errors]
        if self.cache is not None:
            snapshot["cache"] = self.cache.snapshot()
        return snapshot
