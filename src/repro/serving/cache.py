"""Epoch-versioned LRU distance cache with per-partition invalidation.

A cached distance is only ever served at the *exact* epoch (update-batch
count) it was computed at — a lookup from a newer epoch is a **stale-epoch
rejection** and drops the entry.  This keeps the cache strictly consistent
with the per-epoch Dijkstra oracle: partition-footprint reasoning alone
cannot prove a distance unchanged across a batch (a weight decrease anywhere
can open a shorter path between vertices of untouched partitions), so the
epoch check is the correctness gate and the partition machinery below is an
*eager eviction* optimisation layered on top of it.

On each installed batch the engine calls :meth:`invalidate_partitions` with
the partition ids touched by the batch (from
:meth:`repro.base.DistanceIndex.vertex_partition`); every entry whose tag set
intersects them is dropped immediately instead of lingering until a
stale-epoch rejection or LRU eviction pushes it out.  Entries touching
overlay/unpartitioned vertices are tagged :data:`OVERLAY` and evicted when
the batch touches overlay vertices.  See DESIGN.md §5.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

#: Partition tag of vertices that live outside every partition (overlay
#: vertices of PostMHL, every vertex of an unpartitioned index).
OVERLAY = -1


@dataclass
class CacheStats:
    """Hit/miss accounting of one cache instance."""

    hits: int = 0
    misses: int = 0
    stale_rejections: int = 0
    invalidated: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class _Entry:
    distance: float
    epoch: int
    tags: FrozenSet[int] = field(default_factory=frozenset)


class EpochDistanceCache:
    """Thread-safe LRU cache of (source, target) → distance, keyed by epoch."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[int, int], _Entry]" = OrderedDict()
        self.stats = CacheStats()

    @staticmethod
    def _key(source: int, target: int) -> Tuple[int, int]:
        return (source, target) if source <= target else (target, source)

    # ------------------------------------------------------------------
    def get(self, source: int, target: int, epoch: int) -> Optional[float]:
        """Cached distance at ``epoch``, or ``None`` on miss/stale rejection."""
        key = self._key(source, target)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            if entry.epoch != epoch:
                del self._entries[key]
                self.stats.stale_rejections += 1
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry.distance

    def put(
        self,
        source: int,
        target: int,
        distance: float,
        epoch: int,
        tags: Iterable[Optional[int]] = (),
    ) -> None:
        """Insert a distance computed at ``epoch``; ``tags`` are partition ids.

        ``None`` tags (unpartitioned / overlay vertices) collapse to
        :data:`OVERLAY`.
        """
        key = self._key(source, target)
        tag_set = frozenset(OVERLAY if tag is None else tag for tag in tags)
        with self._lock:
            self._entries[key] = _Entry(distance, epoch, tag_set)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    # ------------------------------------------------------------------
    def invalidate_partitions(self, partitions: Iterable[Optional[int]]) -> int:
        """Drop every entry whose tag set intersects ``partitions``.

        Returns the number of entries removed.  ``None`` in ``partitions``
        matches :data:`OVERLAY`-tagged entries.
        """
        affected = {OVERLAY if pid is None else pid for pid in partitions}
        if not affected:
            return 0
        with self._lock:
            doomed = [
                key for key, entry in self._entries.items() if entry.tags & affected
            ]
            for key in doomed:
                del self._entries[key]
            self.stats.invalidated += len(doomed)
            return len(doomed)

    def invalidate_all(self) -> int:
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            self.stats.invalidated += count
            return count

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, pair: Tuple[int, int]) -> bool:
        with self._lock:
            return self._key(*pair) in self._entries

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "stale_rejections": self.stats.stale_rejections,
                "invalidated": self.stats.invalidated,
                "evictions": self.stats.evictions,
                "hit_rate": self.stats.hit_rate,
            }
