"""repro.serving — a concurrent query-serving engine on top of the indexes.

Where :mod:`repro.throughput` *models* the maximum sustainable query rate
analytically (Lemma 1 over sequential stage timings), this package *runs* the
system: queries from concurrent client threads are answered against
consistent per-epoch snapshots while update batches install on a dedicated
maintenance worker, with each index's multi-stage catalog dispatched live.

Modules
-------
``engine``     :class:`ServingEngine` — epochs, locks, maintenance worker.
``router``     stage-aware dispatch with per-stage validity epochs.
``cache``      epoch-versioned LRU distance cache, partition invalidation.
``admission``  Lemma-1-style QoS admission control / load shedding.
``metrics``    QPS counters and p50/p95/p99 latency histograms.
``driver``     closed-loop mixed query/update workload runner (``exp9``).
``rwlock``     the reader-writer lock behind the epoch protocol.

Quickstart::

    from repro import PostMHLIndex, generate_update_batch, grid_road_network
    from repro.serving import ServingEngine

    graph = grid_road_network(12, 12, seed=7)
    with ServingEngine(PostMHLIndex(graph), response_qos=0.2) as engine:
        engine.submit_batch(generate_update_batch(graph, volume=20, seed=1))
        result = engine.serve(0, 143)
        print(result.distance, result.stage, result.epoch)
"""

from repro.exceptions import EngineStoppedError, QueryRejectedError, ServingError
from repro.serving.admission import AdmissionController, AdmissionDecision, AlwaysAdmit
from repro.serving.cache import OVERLAY, CacheStats, EpochDistanceCache
from repro.serving.driver import MixedWorkloadReport, run_mixed_workload
from repro.serving.engine import QueryResult, ServingEngine
from repro.serving.metrics import LatencyHistogram, ServingMetrics
from repro.serving.router import LAST_STAGE, RoutedStage, StageRouter, stage_entries
from repro.serving.rwlock import RWLock

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AlwaysAdmit",
    "CacheStats",
    "EngineStoppedError",
    "EpochDistanceCache",
    "OVERLAY",
    "QueryRejectedError",
    "ServingError",
    "LatencyHistogram",
    "LAST_STAGE",
    "MixedWorkloadReport",
    "QueryResult",
    "RoutedStage",
    "RWLock",
    "ServingEngine",
    "ServingMetrics",
    "StageRouter",
    "run_mixed_workload",
    "stage_entries",
]
