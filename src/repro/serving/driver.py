"""Closed-loop mixed query/update workload driver.

Runs the measurement protocol of the live-serving experiment (``exp9``): a
set of client threads issue queries back-to-back against a
:class:`~repro.serving.engine.ServingEngine` while the driver thread feeds
update batches at a fixed interval — the live counterpart of the analytic
batch-arrival model of :mod:`repro.throughput`.  The report carries the
measured QPS and latency quantiles next to everything needed to replay each
answer against a per-epoch Dijkstra oracle.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import QueryRejectedError, ServingError
from repro.graph.updates import UpdateBatch
from repro.serving.engine import QueryResult, ServingEngine


@dataclass
class MixedWorkloadReport:
    """Outcome of one :func:`run_mixed_workload` run."""

    duration_seconds: float
    queries_attempted: int
    queries_served: int
    queries_shed: int
    batches_applied: int
    #: Served queries per second of wall-clock driving time.
    measured_qps: float
    #: Individual results (populated when ``collect_results`` is set).
    results: List[QueryResult] = field(default_factory=list)
    #: Engine stats snapshot taken right after the run.
    stats: Dict[str, object] = field(default_factory=dict)

    @property
    def shed_fraction(self) -> float:
        return self.queries_shed / self.queries_attempted if self.queries_attempted else 0.0


def run_mixed_workload(
    engine: ServingEngine,
    pairs: Sequence[Tuple[int, int]],
    duration_seconds: float,
    query_threads: int = 2,
    batches: Sequence[UpdateBatch] = (),
    update_interval: Optional[float] = None,
    collect_results: bool = False,
    seed: int = 0,
) -> MixedWorkloadReport:
    """Drive ``engine`` with concurrent queries and update batches.

    ``query_threads`` closed-loop clients draw (source, target) pairs at
    random from ``pairs`` until ``duration_seconds`` elapse; meanwhile the
    calling thread submits each batch of ``batches`` spaced by
    ``update_interval`` (default: the duration split evenly so every batch
    lands inside the run).  The engine must already be started.
    """
    if not pairs:
        raise ServingError("cannot drive a workload without query pairs")
    if query_threads < 1:
        raise ServingError(f"query_threads must be >= 1, got {query_threads}")
    if duration_seconds <= 0:
        raise ServingError(f"duration_seconds must be positive, got {duration_seconds}")
    if not engine.is_running and batches:
        raise ServingError("engine must be started to install update batches")

    if update_interval is None:
        update_interval = duration_seconds / (len(batches) + 1) if batches else duration_seconds

    deadline = time.perf_counter() + duration_seconds
    attempted = [0] * query_threads
    served = [0] * query_threads
    shed = [0] * query_threads
    collected: List[List[QueryResult]] = [[] for _ in range(query_threads)]

    def client(worker: int) -> None:
        rng = random.Random(seed + worker)
        while time.perf_counter() < deadline:
            source, target = pairs[rng.randrange(len(pairs))]
            attempted[worker] += 1
            try:
                result = engine.serve(source, target)
            except QueryRejectedError:
                shed[worker] += 1
                continue
            served[worker] += 1
            if collect_results:
                collected[worker].append(result)

    threads = [
        threading.Thread(target=client, args=(worker,), name=f"repro-client-{worker}")
        for worker in range(query_threads)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()

    applied = 0
    for batch in batches:
        time.sleep(update_interval)
        if time.perf_counter() >= deadline:
            break
        engine.submit_batch(batch)
        applied += 1

    for thread in threads:
        thread.join()
    # QPS is served-over-driving-time; the maintenance drain below must not
    # deflate it (it is method-dependent and no client is querying anymore).
    elapsed = time.perf_counter() - started
    if applied:
        engine.wait_for_maintenance()

    total_served = sum(served)
    results: List[QueryResult] = []
    if collect_results:
        for chunk in collected:
            results.extend(chunk)
    return MixedWorkloadReport(
        duration_seconds=elapsed,
        queries_attempted=sum(attempted),
        queries_served=total_served,
        queries_shed=sum(shed),
        batches_applied=applied,
        measured_qps=total_served / elapsed if elapsed > 0 else 0.0,
        results=results,
        stats=engine.stats(),
    )
