"""QoS admission control / load shedding for the serving engine.

The paper's Lemma 1 bounds the maximum sustainable arrival rate under a mean
response-time QoS ``R*_q`` by modelling the server as an M/G/1 queue; the
controller here applies the same bound *online*: it estimates the recent
arrival rate and the first two moments of the service time from live
observations, computes the sustainable rate with
:func:`repro.throughput.qos.qos_constrained_rate`, and sheds queries once the
offered load exceeds it (or once the in-flight backlog alone would already
blow the response-time budget).  Shedding excess load is what keeps the
*admitted* queries inside the QoS bound instead of letting the queue diverge.
"""

from __future__ import annotations

import statistics
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.exceptions import WorkloadError
from repro.throughput.qos import qos_constrained_rate


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    reason: str
    arrival_rate: float
    sustainable_rate: float

    def __bool__(self) -> bool:
        return self.admitted


class AdmissionController:
    """Online Lemma-1-style admission control keyed on the response-time QoS.

    Parameters
    ----------
    response_qos:
        ``R*_q`` in seconds — the mean response-time bound admitted queries
        must stay within.
    window_seconds:
        Length of the sliding window used to estimate the arrival rate.
    min_samples:
        Number of completed queries observed before shedding starts; until
        then every query is admitted (``"warming_up"``).
    max_inflight_budget:
        Shed when ``inflight × mean_service`` exceeds this multiple of the
        QoS bound (the backlog alone would consume the budget).
    clock:
        Injectable monotonic clock (tests pass a fake).
    """

    def __init__(
        self,
        response_qos: float,
        window_seconds: float = 2.0,
        min_samples: int = 30,
        max_inflight_budget: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if response_qos <= 0:
            raise WorkloadError(f"response_qos must be positive, got {response_qos}")
        if window_seconds <= 0:
            raise WorkloadError(f"window_seconds must be positive, got {window_seconds}")
        self.response_qos = response_qos
        self.window_seconds = window_seconds
        self.min_samples = min_samples
        self.max_inflight_budget = max_inflight_budget
        self._clock = clock
        self._lock = threading.Lock()
        self._arrivals: deque = deque()
        self._latencies: deque = deque(maxlen=256)

    # ------------------------------------------------------------------
    def observe_latency(self, seconds: float) -> None:
        """Feed one completed query's service time into the estimator."""
        with self._lock:
            self._latencies.append(seconds)

    def service_moments(self) -> tuple:
        """Current mean/variance estimate of the per-query service time."""
        with self._lock:
            samples = list(self._latencies)
        if not samples:
            return 0.0, 0.0
        mean = statistics.fmean(samples)
        variance = statistics.pvariance(samples) if len(samples) > 1 else 0.0
        return mean, variance

    def sustainable_rate(self) -> float:
        """Lemma-1 QoS term evaluated on the live service-time estimate."""
        mean, variance = self.service_moments()
        if mean <= 0:
            return float("inf")
        return qos_constrained_rate(mean, variance, self.response_qos)

    # ------------------------------------------------------------------
    def decide(self, inflight: int = 0) -> AdmissionDecision:
        """Register an arrival and decide whether to admit it.

        Shed arrivals still count toward the offered-load estimate — the
        controller reasons about what is *arriving*, not what it let through.
        """
        now = self._clock()
        with self._lock:
            self._arrivals.append(now)
            cutoff = now - self.window_seconds
            while self._arrivals and self._arrivals[0] < cutoff:
                self._arrivals.popleft()
            arrival_rate = len(self._arrivals) / self.window_seconds
            warm = len(self._latencies) >= self.min_samples

        if not warm:
            return AdmissionDecision(True, "warming_up", arrival_rate, float("inf"))

        mean, variance = self.service_moments()
        limit = (
            qos_constrained_rate(mean, variance, self.response_qos)
            if mean > 0
            else float("inf")
        )
        if mean > 0 and inflight * mean > self.max_inflight_budget * self.response_qos:
            return AdmissionDecision(False, "inflight_backlog", arrival_rate, limit)
        if arrival_rate > limit:
            return AdmissionDecision(False, "offered_load", arrival_rate, limit)
        return AdmissionDecision(True, "ok", arrival_rate, limit)


class AlwaysAdmit:
    """Admission stub used when no QoS bound is configured."""

    def observe_latency(self, seconds: float) -> None:  # pragma: no cover - trivial
        pass

    def decide(self, inflight: int = 0) -> AdmissionDecision:
        return AdmissionDecision(True, "no_qos", 0.0, float("inf"))
