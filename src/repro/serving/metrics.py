"""Serving-side observability: QPS counters and latency histograms.

The throughput experiments report the *analytic* maximum sustainable rate
``λ*_q`` (``repro.throughput.qos``); the serving engine complements it with
*measured* figures — queries actually served per second and p50/p95/p99
response-time quantiles — so the two can be cross-checked (``exp9``).

:class:`LatencyHistogram` is a latency-flavoured view of the generalised
:class:`repro.obs.metrics.Histogram` (same buckets, same quantile semantics);
when ``repro.obs`` is enabled, :class:`ServingMetrics` additionally mirrors
every recorded event into the process-wide metric registry
(``repro_serving_*`` series), so the legacy :meth:`ServingMetrics.snapshot`
and the registry always agree.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, Optional

from repro import obs
from repro.obs.metrics import Histogram


class LatencyHistogram(Histogram):
    """Log-bucketed latency histogram with approximate quantiles.

    A :class:`repro.obs.metrics.Histogram` with latency defaults (1 µs – 10 s,
    10 buckets per decade) and second-suffixed snapshot keys.  Bucket error
    stays within one bucket width (~26 %) at any scale — plenty for
    p50/p95/p99 reporting — with O(1) recording and fixed memory.
    ``quantile(0.0)`` returns the exact minimum observed latency.
    """

    def __init__(
        self,
        min_latency: float = 1e-6,
        max_latency: float = 10.0,
        buckets_per_decade: int = 10,
    ) -> None:
        super().__init__(
            min_value=min_latency,
            max_value=max_latency,
            buckets_per_decade=buckets_per_decade,
        )

    def snapshot(self) -> Dict[str, object]:
        return {
            "count": float(self.count),
            "mean_seconds": self.mean,
            "min_seconds": self.min,
            "p50_seconds": self.quantile(0.50),
            "p95_seconds": self.quantile(0.95),
            "p99_seconds": self.quantile(0.99),
            "max_seconds": self.max,
            "bucket_bounds": self.bucket_bounds(),
            "bucket_counts": self.bucket_counts(),
        }


class ServingMetrics:
    """Thread-safe counters for one :class:`~repro.serving.engine.ServingEngine`.

    Tracks served/shed query counts, a per-stage breakdown (which query stage
    actually answered — the live counterpart of the paper's Figure 13), cache
    accounting, maintenance batches, and a latency histogram.  ``qps`` is the
    served rate over a sliding window; ``lifetime_qps`` over the whole run.
    """

    def __init__(self, clock=time.monotonic, window_seconds: float = 2.0) -> None:
        self._clock = clock
        self._window = window_seconds
        self._lock = threading.Lock()
        self._started = clock()
        self._served = 0
        self._shed = 0
        self._cache_hits = 0
        self._by_stage: Dict[str, int] = {}
        self._latency = LatencyHistogram()
        self._recent: deque = deque()
        self._batches = 0
        self._batch_seconds = 0.0

    # ------------------------------------------------------------------
    def record_query(self, stage: str, latency_seconds: float, from_cache: bool = False) -> None:
        now = self._clock()
        with self._lock:
            self._served += 1
            if from_cache:
                self._cache_hits += 1
            self._by_stage[stage] = self._by_stage.get(stage, 0) + 1
            self._latency.record(latency_seconds)
            self._recent.append(now)
            cutoff = now - self._window
            while self._recent and self._recent[0] < cutoff:
                self._recent.popleft()
        if obs.is_enabled():
            registry = obs.registry()
            registry.counter(
                "repro_serving_queries_total", "Queries served, by answering stage",
                stage=stage,
            ).inc()
            if from_cache:
                registry.counter(
                    "repro_serving_cache_hits_total", "Queries answered from the cache"
                ).inc()
            registry.histogram(
                "repro_serving_latency_seconds", "Per-query response time"
            ).record(latency_seconds)

    def record_shed(self) -> None:
        with self._lock:
            self._shed += 1
        if obs.is_enabled():
            obs.registry().counter(
                "repro_serving_queries_shed_total", "Queries shed by admission control"
            ).inc()

    def record_batch(self, wall_seconds: float) -> None:
        with self._lock:
            self._batches += 1
            self._batch_seconds += wall_seconds
        if obs.is_enabled():
            registry = obs.registry()
            registry.counter(
                "repro_serving_maintenance_batches_total", "Installed update batches"
            ).inc()
            registry.histogram(
                "repro_serving_maintenance_seconds", "Wall time per installed batch"
            ).record(wall_seconds)

    # ------------------------------------------------------------------
    @property
    def queries_served(self) -> int:
        with self._lock:
            return self._served

    @property
    def queries_shed(self) -> int:
        with self._lock:
            return self._shed

    def qps(self, window_seconds: Optional[float] = None) -> float:
        """Served queries per second over the sliding window.

        Stale timestamps are trimmed here as well as in ``record_query``, so
        an idle engine releases the window's memory and repeated ``qps``
        calls don't rescan entries that can never count again.
        """
        window = window_seconds if window_seconds is not None else self._window
        now = self._clock()
        with self._lock:
            cutoff = now - self._window
            while self._recent and self._recent[0] < cutoff:
                self._recent.popleft()
            if window >= self._window:
                recent = len(self._recent)
            else:
                query_cutoff = now - window
                recent = sum(1 for t in self._recent if t >= query_cutoff)
        return recent / window if window > 0 else 0.0

    def lifetime_qps(self) -> float:
        elapsed = self._clock() - self._started
        with self._lock:
            served = self._served
        return served / elapsed if elapsed > 0 else 0.0

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            attempted = self._served + self._shed
            return {
                "queries_served": self._served,
                "queries_shed": self._shed,
                "shed_fraction": self._shed / attempted if attempted else 0.0,
                "cache_hits": self._cache_hits,
                "by_stage": dict(self._by_stage),
                "batches_applied": self._batches,
                "maintenance_seconds": self._batch_seconds,
                "latency": self._latency.snapshot(),
            }
