"""Serving-side observability: QPS counters and latency histograms.

The throughput experiments report the *analytic* maximum sustainable rate
``λ*_q`` (``repro.throughput.qos``); the serving engine complements it with
*measured* figures — queries actually served per second and p50/p95/p99
response-time quantiles — so the two can be cross-checked (``exp9``).
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from typing import Dict, Optional


class LatencyHistogram:
    """Log-bucketed latency histogram with approximate quantiles.

    Buckets are geometrically spaced between ``min_latency`` and
    ``max_latency`` (default 1 µs – 10 s, 10 buckets per decade), which keeps
    the quantile error within one bucket width (~26 %) at any scale — plenty
    for p50/p95/p99 reporting — with O(1) recording and fixed memory.
    """

    def __init__(
        self,
        min_latency: float = 1e-6,
        max_latency: float = 10.0,
        buckets_per_decade: int = 10,
    ) -> None:
        if min_latency <= 0 or max_latency <= min_latency:
            raise ValueError("require 0 < min_latency < max_latency")
        self._min = min_latency
        self._per_decade = buckets_per_decade
        decades = math.log10(max_latency / min_latency)
        self._num_buckets = int(math.ceil(decades * buckets_per_decade)) + 1
        self._counts = [0] * (self._num_buckets + 1)  # +1 overflow bucket
        self._total = 0
        self._sum = 0.0
        self._max = 0.0

    def _bucket(self, latency: float) -> int:
        if latency <= self._min:
            return 0
        index = int(math.log10(latency / self._min) * self._per_decade)
        return min(index, self._num_buckets)  # clamp into the overflow bucket

    def _bucket_upper(self, index: int) -> float:
        return self._min * 10.0 ** ((index + 1) / self._per_decade)

    def record(self, latency_seconds: float) -> None:
        self._counts[self._bucket(latency_seconds)] += 1
        self._total += 1
        self._sum += latency_seconds
        if latency_seconds > self._max:
            self._max = latency_seconds

    @property
    def count(self) -> int:
        return self._total

    @property
    def mean(self) -> float:
        return self._sum / self._total if self._total else 0.0

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (upper bound of the containing bucket)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._total == 0:
            return 0.0
        rank = q * self._total
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            cumulative += bucket_count
            if cumulative >= rank:
                return min(self._bucket_upper(index), self._max)
        return self._max

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": float(self._total),
            "mean_seconds": self.mean,
            "p50_seconds": self.quantile(0.50),
            "p95_seconds": self.quantile(0.95),
            "p99_seconds": self.quantile(0.99),
            "max_seconds": self._max,
        }


class ServingMetrics:
    """Thread-safe counters for one :class:`~repro.serving.engine.ServingEngine`.

    Tracks served/shed query counts, a per-stage breakdown (which query stage
    actually answered — the live counterpart of the paper's Figure 13), cache
    accounting, maintenance batches, and a latency histogram.  ``qps`` is the
    served rate over a sliding window; ``lifetime_qps`` over the whole run.
    """

    def __init__(self, clock=time.monotonic, window_seconds: float = 2.0) -> None:
        self._clock = clock
        self._window = window_seconds
        self._lock = threading.Lock()
        self._started = clock()
        self._served = 0
        self._shed = 0
        self._cache_hits = 0
        self._by_stage: Dict[str, int] = {}
        self._latency = LatencyHistogram()
        self._recent: deque = deque()
        self._batches = 0
        self._batch_seconds = 0.0

    # ------------------------------------------------------------------
    def record_query(self, stage: str, latency_seconds: float, from_cache: bool = False) -> None:
        now = self._clock()
        with self._lock:
            self._served += 1
            if from_cache:
                self._cache_hits += 1
            self._by_stage[stage] = self._by_stage.get(stage, 0) + 1
            self._latency.record(latency_seconds)
            self._recent.append(now)
            cutoff = now - self._window
            while self._recent and self._recent[0] < cutoff:
                self._recent.popleft()

    def record_shed(self) -> None:
        with self._lock:
            self._shed += 1

    def record_batch(self, wall_seconds: float) -> None:
        with self._lock:
            self._batches += 1
            self._batch_seconds += wall_seconds

    # ------------------------------------------------------------------
    @property
    def queries_served(self) -> int:
        with self._lock:
            return self._served

    @property
    def queries_shed(self) -> int:
        with self._lock:
            return self._shed

    def qps(self, window_seconds: Optional[float] = None) -> float:
        """Served queries per second over the sliding window."""
        window = window_seconds if window_seconds is not None else self._window
        now = self._clock()
        cutoff = now - window
        with self._lock:
            recent = sum(1 for t in self._recent if t >= cutoff)
        return recent / window if window > 0 else 0.0

    def lifetime_qps(self) -> float:
        elapsed = self._clock() - self._started
        with self._lock:
            served = self._served
        return served / elapsed if elapsed > 0 else 0.0

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            attempted = self._served + self._shed
            return {
                "queries_served": self._served,
                "queries_shed": self._shed,
                "shed_fraction": self._shed / attempted if attempted else 0.0,
                "cache_hits": self._cache_hits,
                "by_stage": dict(self._by_stage),
                "batches_applied": self._batches,
                "maintenance_seconds": self._batch_seconds,
                "latency": self._latency.snapshot(),
            }
