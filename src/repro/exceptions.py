"""Exception hierarchy for the repro package.

All library-specific errors derive from :class:`ReproError` so that callers can
catch any failure originating in this package with a single ``except`` clause
while still being able to distinguish graph-level, index-level, partitioning
and workload problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class GraphError(ReproError):
    """Raised for invalid graph construction or mutation requests."""


class EdgeNotFoundError(GraphError):
    """Raised when an operation references an edge that does not exist."""

    def __init__(self, u: int, v: int):
        super().__init__(f"edge ({u}, {v}) does not exist")
        self.u = u
        self.v = v


class VertexNotFoundError(GraphError):
    """Raised when an operation references a vertex that does not exist."""

    def __init__(self, v: int):
        super().__init__(f"vertex {v} does not exist")
        self.vertex = v


class InvalidWeightError(GraphError):
    """Raised when an edge weight is not a strictly positive finite number."""

    def __init__(self, weight: float):
        super().__init__(f"edge weight must be positive and finite, got {weight!r}")
        self.weight = weight


class DisconnectedGraphError(GraphError):
    """Raised when an algorithm requires a connected graph but got one that is not."""


class IndexError_(ReproError):
    """Base class for shortest-path index errors (named with a trailing underscore
    to avoid shadowing the builtin :class:`IndexError`)."""


class IndexNotBuiltError(IndexError_):
    """Raised when a query or update is issued against an index that has not been built."""


class IndexStaleError(IndexError_):
    """Raised when a query stage is used while the corresponding index is stale."""


class SnapshotError(ReproError):
    """Base class for index-persistence (``repro.store``) errors."""


class SnapshotFormatError(SnapshotError):
    """Raised when a snapshot is missing, truncated or structurally corrupt."""


class SnapshotVersionError(SnapshotError):
    """Raised when a snapshot's schema version is not the one this code reads/writes."""

    def __init__(self, found: object, expected: int):
        super().__init__(
            f"snapshot schema version {found!r} is not supported "
            f"(this build reads/writes version {expected})"
        )
        self.found = found
        self.expected = expected


class SnapshotGraphMismatchError(SnapshotError):
    """Raised when a snapshot's graph fingerprint does not match the supplied graph."""


class SnapshotUnsupportedError(SnapshotError):
    """Raised when an index (or index state) cannot be snapshotted."""


class PartitioningError(ReproError):
    """Raised when a partitioning request cannot be satisfied."""


class WorkloadError(ReproError):
    """Raised for invalid workload or throughput-evaluation configuration."""


class ServingError(ReproError):
    """Base class for errors raised by the live query-serving engine."""


class ClusterError(ServingError):
    """Base class for errors raised by the sharded multi-process cluster."""


class ClusterWorkerError(ClusterError):
    """Raised when a cluster worker dies, hangs past its timeout, or reports
    a command failure; the in-flight batch fails and the worker is respawned
    from the last published snapshot."""

    def __init__(self, worker_id: int, reason: str):
        super().__init__(f"cluster worker {worker_id} failed: {reason}")
        self.worker_id = worker_id
        self.reason = reason


class ServerError(ServingError):
    """Base class for errors raised by the network query plane (``repro.server``)."""


class ProtocolError(ServerError):
    """Raised when a frame on the wire violates the protocol.

    ``code`` is the machine-readable error code carried by the typed ERROR
    frame the server answers with; ``seq`` is the offending request's
    sequence number when the header parsed far enough to recover it;
    ``recoverable`` says whether the byte stream is still in sync (the
    connection can keep being used) or must be closed.
    """

    def __init__(
        self,
        message: str,
        code: str = "malformed_frame",
        seq: "int | None" = None,
        recoverable: bool = False,
    ):
        super().__init__(message)
        self.code = code
        self.seq = seq
        self.recoverable = recoverable


class ProtocolVersionError(ProtocolError):
    """Raised when a frame carries an unsupported protocol version byte."""

    def __init__(self, found: int, expected: int):
        super().__init__(
            f"unsupported protocol version {found} (this build speaks {expected})",
            code="bad_version",
        )
        self.found = found
        self.expected = expected


class FrameTooLargeError(ProtocolError):
    """Raised when a frame's length prefix exceeds the configured cap."""

    def __init__(self, length: int, limit: int):
        super().__init__(
            f"frame of {length} bytes exceeds the {limit}-byte cap",
            code="frame_too_large",
        )
        self.length = length
        self.limit = limit


class ServerBackpressureError(ServerError):
    """Client-side mapping of a RETRY frame (the 429 analogue).

    Carries the server's queue-depth hint and suggested wait so closed-loop
    clients can back off proportionally to the backlog they caused.
    """

    def __init__(self, reason: str, queue_depth: int, suggested_wait_seconds: float):
        super().__init__(
            f"server asked to retry ({reason}): queue_depth={queue_depth}, "
            f"suggested_wait={suggested_wait_seconds:.4f}s"
        )
        self.reason = reason
        self.queue_depth = queue_depth
        self.suggested_wait_seconds = suggested_wait_seconds


class RemoteServerError(ServerError):
    """Client-side mapping of a typed ERROR frame."""

    def __init__(self, code: str, message: str):
        super().__init__(f"server error [{code}]: {message}")
        self.code = code


class ServerClosedError(ServerError):
    """Raised when a request cannot complete because the connection closed."""


class QueryRejectedError(ServingError):
    """Raised when admission control sheds a query to protect the QoS bound."""

    def __init__(self, reason: str):
        super().__init__(f"query rejected by admission control: {reason}")
        self.reason = reason


class EngineStoppedError(ServingError):
    """Raised when work is submitted to a serving engine that is not running."""
