"""Exception hierarchy for the repro package.

All library-specific errors derive from :class:`ReproError` so that callers can
catch any failure originating in this package with a single ``except`` clause
while still being able to distinguish graph-level, index-level, partitioning
and workload problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class GraphError(ReproError):
    """Raised for invalid graph construction or mutation requests."""


class EdgeNotFoundError(GraphError):
    """Raised when an operation references an edge that does not exist."""

    def __init__(self, u: int, v: int):
        super().__init__(f"edge ({u}, {v}) does not exist")
        self.u = u
        self.v = v


class VertexNotFoundError(GraphError):
    """Raised when an operation references a vertex that does not exist."""

    def __init__(self, v: int):
        super().__init__(f"vertex {v} does not exist")
        self.vertex = v


class InvalidWeightError(GraphError):
    """Raised when an edge weight is not a strictly positive finite number."""

    def __init__(self, weight: float):
        super().__init__(f"edge weight must be positive and finite, got {weight!r}")
        self.weight = weight


class DisconnectedGraphError(GraphError):
    """Raised when an algorithm requires a connected graph but got one that is not."""


class IndexError_(ReproError):
    """Base class for shortest-path index errors (named with a trailing underscore
    to avoid shadowing the builtin :class:`IndexError`)."""


class IndexNotBuiltError(IndexError_):
    """Raised when a query or update is issued against an index that has not been built."""


class IndexStaleError(IndexError_):
    """Raised when a query stage is used while the corresponding index is stale."""


class SnapshotError(ReproError):
    """Base class for index-persistence (``repro.store``) errors."""


class SnapshotFormatError(SnapshotError):
    """Raised when a snapshot is missing, truncated or structurally corrupt."""


class SnapshotVersionError(SnapshotError):
    """Raised when a snapshot's schema version is not the one this code reads/writes."""

    def __init__(self, found: object, expected: int):
        super().__init__(
            f"snapshot schema version {found!r} is not supported "
            f"(this build reads/writes version {expected})"
        )
        self.found = found
        self.expected = expected


class SnapshotGraphMismatchError(SnapshotError):
    """Raised when a snapshot's graph fingerprint does not match the supplied graph."""


class SnapshotUnsupportedError(SnapshotError):
    """Raised when an index (or index state) cannot be snapshotted."""


class PartitioningError(ReproError):
    """Raised when a partitioning request cannot be satisfied."""


class WorkloadError(ReproError):
    """Raised for invalid workload or throughput-evaluation configuration."""


class ServingError(ReproError):
    """Base class for errors raised by the live query-serving engine."""


class ClusterError(ServingError):
    """Base class for errors raised by the sharded multi-process cluster."""


class ClusterWorkerError(ClusterError):
    """Raised when a cluster worker dies, hangs past its timeout, or reports
    a command failure; the in-flight batch fails and the worker is respawned
    from the last published snapshot."""

    def __init__(self, worker_id: int, reason: str):
        super().__init__(f"cluster worker {worker_id} failed: {reason}")
        self.worker_id = worker_id
        self.reason = reason


class QueryRejectedError(ServingError):
    """Raised when admission control sheds a query to protect the QoS bound."""

    def __init__(self, reason: str):
        super().__init__(f"query rejected by admission control: {reason}")
        self.reason = reason


class EngineStoppedError(ServingError):
    """Raised when work is submitted to a serving engine that is not running."""
