"""Exp 5 / Figure 14 — effect of update volume, interval and response-time QoS."""

from repro.experiments import exp5_parameters
from repro.experiments.runner import print_experiment

from conftest import run_once


def test_exp5_parameters(benchmark, quick_config):
    rows = run_once(benchmark, lambda: exp5_parameters.run(quick_config, quick=True))
    print_experiment("Figure 14 — effect of |U|, δt and R*_q", rows)
    assert {row["parameter"] for row in rows} == {
        "update_volume",
        "update_interval",
        "response_qos",
    }
