"""Exp 6 / Figure 15 — effect of the (virtual) thread number p."""

from repro.experiments import exp6_threads
from repro.experiments.runner import print_experiment

from conftest import run_once


def test_exp6_threads(benchmark, quick_config):
    rows = run_once(benchmark, lambda: exp6_threads.run(quick_config, quick=True))
    print_experiment("Figure 15 — speedup when varying thread number", rows)
    for method in {row["method"] for row in rows}:
        speedups = [r["update_speedup"] for r in rows if r["method"] == method]
        assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:]))
