"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures on the quick
(scaled-down) configuration and prints the resulting rows, so the series the
paper reports can be read directly from the benchmark output (output capture
is disabled via ``-s`` in the project-wide pytest options).
"""

import pytest

from repro.experiments.config import DEFAULT_CONFIG


@pytest.fixture(scope="session")
def quick_config():
    """The reduced experiment configuration used by all benchmarks."""
    return DEFAULT_CONFIG.quick()


def run_once(benchmark, func):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
