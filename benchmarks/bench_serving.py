"""Exp 9 — live serving engine: measured QPS versus the analytic λ*_q bound."""

from repro.experiments import exp9_live_serving
from repro.experiments.runner import print_experiment

from conftest import run_once


def test_live_serving(benchmark, quick_config):
    rows = run_once(benchmark, lambda: exp9_live_serving.run(quick_config, quick=True))
    print_experiment("Exp 9 — live serving (measured vs analytic)", rows)
    by_method = {row["method"]: row for row in rows}
    assert by_method["PostMHL"]["measured_qps"] > 0
    assert by_method["PostMHL"]["analytic_max_throughput"] > 0
    # The engine must actually have interleaved maintenance with serving.
    assert all(row["batches_applied"] >= 1 for row in rows)
