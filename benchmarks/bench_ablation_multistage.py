"""Ablation A2 — multi-stage query release versus single-stage maintenance."""

from repro.experiments.ablations import multistage_ablation_rows
from repro.experiments.runner import print_experiment

from conftest import run_once


def test_ablation_multistage(benchmark, quick_config):
    rows = run_once(benchmark, lambda: multistage_ablation_rows("NY", quick_config))
    print_experiment("Ablation A2 — multi-stage scheme", rows)
    assert all(row["throughput"] > 0 for row in rows)
