"""Frozen-kernel benchmark: scalar + batch query latencies for all nine indexes.

Measures, on the quick configuration (a seeded grid analog), the per-query
latency of every registered method with the frozen kernels on versus the
pure-Python reference path (``use_kernels=False``), for

* the scalar ``query`` loop, and
* the batch plane (``query_many`` over a pair batch),

and writes the rows plus the derived speedups to ``BENCH_kernels.json`` —
the machine-readable perf trajectory seeded by this benchmark and uploaded
as a CI artifact.  Run directly::

    PYTHONPATH=src python benchmarks/bench_kernels.py [--out BENCH_kernels.json]

Equivalence (kernel results == reference results, bit-for-bit) is asserted
on every method while measuring, so a speedup can never come from answering
a different question.
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import time
from typing import Dict, List, Tuple

from repro.graph.generators import grid_road_network
from repro.kernels.native import native_kernel, native_kernel_error
from repro.registry import create_index, get_spec
from repro.throughput.workload import sample_query_pairs

#: All nine methods on quick-config construction parameters.
SPECS = {
    "BiDijkstra": get_spec("BiDijkstra"),
    "DCH": get_spec("DCH"),
    "DH2H": get_spec("DH2H"),
    "MHL": get_spec("MHL"),
    "TOAIN": get_spec("TOAIN", checkin_fraction=0.25),
    "N-CH-P": get_spec("N-CH-P", num_partitions=4, seed=0),
    "P-TD-P": get_spec("P-TD-P", num_partitions=4, seed=0),
    "PMHL": get_spec("PMHL", num_partitions=4, seed=0),
    "PostMHL": get_spec("PostMHL", bandwidth=12, expected_partitions=4),
}

#: Methods whose labels freeze into the CSR LabelStore (the H2H family) —
#: the batch acceptance bar (≥12x vs pure Python) applies to these.
H2H_FAMILY = ("DH2H", "MHL", "PMHL", "PostMHL")
#: Methods whose query plane is a bidirectional search over frozen CSR
#: arrays (GraphSnapshot / ShortcutStore) — the CH-search acceptance bar
#: (≥2x scalar and batch) applies to these.
CH_SEARCH_FAMILY = ("BiDijkstra", "DCH", "TOAIN", "N-CH-P", "P-TD-P")

GRID = 52
SCALAR_QUERIES = 400
BATCH_QUERIES = 4000
#: The per-pair search baselines (index-free / CH searches) are orders of
#: magnitude slower per query; smaller counts keep the run short.
SLOW_METHODS = {"BiDijkstra": (60, 240), "DCH": (150, 600), "TOAIN": (150, 600),
                "N-CH-P": (60, 240), "P-TD-P": (150, 600)}


def _measure(index, pairs: List[Tuple[int, int]], scalar_n: int) -> Dict[str, object]:
    scalar_pairs = pairs[:scalar_n]
    # Warm-up freezes the stores outside the timed region (a freeze is paid
    # once per update epoch, not per query).  The one-to-many warm-up group is
    # large enough to trigger every batch-only store (e.g. TOAIN's hub table).
    index.query(*pairs[0])
    index.query_many(pairs[:4])
    index.query_one_to_many(pairs[0][0], [t for _, t in pairs[:16]])

    start = time.perf_counter()
    scalar = [index.query(s, t) for s, t in scalar_pairs]
    scalar_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batch = index.query_many(pairs)
    batch_seconds = time.perf_counter() - start
    return {
        "scalar_seconds": scalar_seconds,
        "scalar_us_per_query": 1e6 * scalar_seconds / len(scalar_pairs),
        "batch_seconds": batch_seconds,
        "batch_us_per_query": 1e6 * batch_seconds / len(pairs),
        "_scalar_results": scalar,
        "_batch_results": batch,
    }


def run(out_path: str) -> Dict[str, object]:
    base = grid_road_network(GRID, GRID, seed=5)
    report: Dict[str, object] = {
        "benchmark": "frozen query kernels",
        "graph": {"kind": "grid", "side": GRID, "vertices": base.num_vertices,
                  "edges": base.num_edges},
        "native_kernel": native_kernel() is not None,
        "native_kernel_error": native_kernel_error(),
        "python": platform.python_version(),
        "methods": {},
    }
    for name, spec in SPECS.items():
        scalar_n, batch_n = SLOW_METHODS.get(name, (SCALAR_QUERIES, BATCH_QUERIES))
        pairs = list(sample_query_pairs(base, batch_n, seed=3))

        fast = create_index(spec, base.copy())
        build_seconds = fast.build()
        kernels = _measure(fast, pairs, scalar_n)

        reference = create_index(spec, base.copy(), use_kernels=False)
        reference.build()
        pure = _measure(reference, pairs, scalar_n)

        # Both sides of each comparison use the same query plane (the kernel
        # stores are literal ports), so equality is exact for every method —
        # including BiDijkstra, whose documented ulp exception only concerns
        # batch-vs-scalar *within* one configuration.
        assert kernels["_scalar_results"] == pure["_scalar_results"], name
        assert kernels["_batch_results"] == pure["_batch_results"], name
        for row in (kernels, pure):
            del row["_scalar_results"], row["_batch_results"]

        entry = {
            "build_seconds": build_seconds,
            "kernels": kernels,
            "reference": pure,
            "scalar_speedup": pure["scalar_seconds"] / kernels["scalar_seconds"],
            "batch_speedup": pure["batch_seconds"] / kernels["batch_seconds"],
            "h2h_family": name in H2H_FAMILY,
            "family": "h2h" if name in H2H_FAMILY else "ch_search",
        }
        report["methods"][name] = entry
        print(
            f"{name:>10}: scalar {entry['scalar_speedup']:5.1f}x "
            f"({pure['scalar_us_per_query']:8.1f} -> {kernels['scalar_us_per_query']:7.1f} us)   "
            f"batch {entry['batch_speedup']:5.1f}x "
            f"({pure['batch_us_per_query']:8.1f} -> {kernels['batch_us_per_query']:7.1f} us)"
        )

    report["families"] = _family_rows(report["methods"])
    for family, row in report["families"].items():
        print(
            f"{family:>10}: scalar min {row['scalar_speedup_min']:.1f}x "
            f"geomean {row['scalar_speedup_geomean']:.1f}x   "
            f"batch min {row['batch_speedup_min']:.1f}x "
            f"geomean {row['batch_speedup_geomean']:.1f}x"
        )

    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(f"\nwrote {out_path}")
    return report


def _family_rows(methods: Dict[str, Dict]) -> Dict[str, Dict[str, object]]:
    """Per-family speedup summaries (the acceptance bars are per family)."""
    rows: Dict[str, Dict[str, object]] = {}
    for family, members in (("h2h", H2H_FAMILY), ("ch_search", CH_SEARCH_FAMILY)):
        scalar = [methods[m]["scalar_speedup"] for m in members]
        batch = [methods[m]["batch_speedup"] for m in members]
        rows[family] = {
            "methods": list(members),
            "scalar_speedup_min": min(scalar),
            "scalar_speedup_geomean": math.exp(sum(map(math.log, scalar)) / len(scalar)),
            "batch_speedup_min": min(batch),
            "batch_speedup_geomean": math.exp(sum(map(math.log, batch)) / len(batch)),
        }
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_kernels.json",
                        help="output JSON path (default: BENCH_kernels.json)")
    args = parser.parse_args()
    run(args.out)


if __name__ == "__main__":
    main()
