"""Ablation A1 — cross-boundary strategy versus concatenation-based queries."""

from repro.experiments.ablations import cross_boundary_ablation_rows
from repro.experiments.runner import print_experiment

from conftest import run_once


def test_ablation_cross_boundary(benchmark, quick_config):
    rows = run_once(
        benchmark, lambda: cross_boundary_ablation_rows("NY", quick_config)
    )
    print_experiment("Ablation A1 — cross-boundary strategy", rows)
    by_stage = {row["query_stage"]: row["mean_query_seconds"] for row in rows}
    assert by_stage["cross_boundary (2-hop)"] < by_stage["no_boundary (concatenation)"]
