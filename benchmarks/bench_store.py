"""Snapshot persistence benchmark: rebuild vs. mmap-backed load, per method.

Builds a medium grid analog, saves every method through ``repro.store`` and
measures

* ``build_seconds`` — full construction from the raw graph,
* ``save_seconds`` — snapshot serialization,
* ``load_seconds`` — ``load_index`` (graph reconstruction + state restore +
  kernel-store reattachment), and
* ``first_query_us`` — the first scalar query after the load (warm-start
  latency: the reattached stores mean no re-freeze is paid),

asserting along the way that the loaded index answers a query sample
bit-identically to the rebuilt original.  The headline acceptance bar — a
persisted medium index loads **≥ 10x faster** than it rebuilds — is asserted
for the label-heavy methods (DH2H, PMHL, PostMHL) and recorded per method in
``BENCH_store.json``.  Run directly::

    PYTHONPATH=src python benchmarks/bench_store.py [--out BENCH_store.json]
                                                    [--side 50]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time
from typing import Dict

from repro.graph.generators import grid_road_network
from repro.registry import create_index, get_spec
from repro.store import load_index, save_index
from repro.throughput.workload import sample_query_pairs

#: All nine methods on quick-config construction parameters.
SPECS = {
    "BiDijkstra": get_spec("BiDijkstra"),
    "DCH": get_spec("DCH"),
    "DH2H": get_spec("DH2H"),
    "MHL": get_spec("MHL"),
    "TOAIN": get_spec("TOAIN", checkin_fraction=0.25),
    "N-CH-P": get_spec("N-CH-P", num_partitions=4, seed=0),
    "P-TD-P": get_spec("P-TD-P", num_partitions=4, seed=0),
    "PMHL": get_spec("PMHL", num_partitions=4, seed=0),
    "PostMHL": get_spec("PostMHL", bandwidth=12, expected_partitions=4),
}

#: Methods whose construction cost is dominated by contraction + label work —
#: the ones the ≥10x load-vs-rebuild acceptance bar applies to.  (BiDijkstra
#: has nothing to persist; the per-partition CH baselines build too little
#: state for a 10x gap at this size.)
HEAVY_METHODS = ("DH2H", "PMHL", "PostMHL")

SPEEDUP_BAR = 10.0
DEFAULT_SIDE = 50
QUERY_SAMPLE = 50


def _dir_bytes(path: str) -> int:
    return sum(
        os.path.getsize(os.path.join(path, name)) for name in os.listdir(path)
    )


def run(out_path: str, side: int = DEFAULT_SIDE) -> Dict[str, object]:
    base = grid_road_network(side, side, seed=5)
    pairs = list(sample_query_pairs(base, QUERY_SAMPLE, seed=3))
    report: Dict[str, object] = {
        "benchmark": "index snapshot persistence (repro.store)",
        "graph": {
            "kind": "grid",
            "side": side,
            "vertices": base.num_vertices,
            "edges": base.num_edges,
        },
        "speedup_bar": SPEEDUP_BAR,
        "heavy_methods": list(HEAVY_METHODS),
        "python": platform.python_version(),
        "methods": {},
    }

    with tempfile.TemporaryDirectory(prefix="bench_store_") as tmp:
        for name, spec in SPECS.items():
            index = create_index(spec, base.copy())
            start = time.perf_counter()
            index.build()
            build_seconds = time.perf_counter() - start
            expected = index.query_many(pairs)
            # Scalar-plane reference: BiDijkstra's scalar query differs from
            # its batch plane in the last ulp (DESIGN.md §6), so the
            # first-query check must compare within the scalar plane.
            expected_scalar = index.query(*pairs[0])

            path = os.path.join(tmp, name.replace("/", "_"))
            start = time.perf_counter()
            save_index(index, path)
            save_seconds = time.perf_counter() - start

            load_index(path)  # warm the page cache: measure load, not disk spin-up
            start = time.perf_counter()
            loaded = load_index(path)
            load_seconds = time.perf_counter() - start

            start = time.perf_counter()
            first = loaded.query(*pairs[0])
            first_query_us = 1e6 * (time.perf_counter() - start)
            assert first == expected_scalar, name
            assert loaded.query_many(pairs) == expected, name

            entry = {
                "build_seconds": build_seconds,
                "save_seconds": save_seconds,
                "load_seconds": load_seconds,
                "first_query_us": first_query_us,
                "snapshot_bytes": _dir_bytes(path),
                "load_speedup": build_seconds / load_seconds,
                "heavy": name in HEAVY_METHODS,
            }
            report["methods"][name] = entry
            print(
                f"{name:>10}: build {build_seconds:6.2f}s  save {save_seconds:5.2f}s  "
                f"load {load_seconds:6.3f}s  ({entry['load_speedup']:5.1f}x, "
                f"{entry['snapshot_bytes'] / 1e6:6.1f} MB, "
                f"first query {first_query_us:6.1f} us)"
            )

    for name in HEAVY_METHODS:
        speedup = report["methods"][name]["load_speedup"]
        assert speedup >= SPEEDUP_BAR, (
            f"{name}: loading must be >= {SPEEDUP_BAR}x faster than rebuilding, "
            f"got {speedup:.1f}x"
        )

    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(f"\nwrote {out_path}")
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_store.json", help="output JSON path"
    )
    parser.add_argument(
        "--side", type=int, default=DEFAULT_SIDE, help="grid side length"
    )
    args = parser.parse_args()
    run(args.out, side=args.side)


if __name__ == "__main__":
    main()
