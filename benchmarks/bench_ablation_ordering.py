"""Ablation A3 — vertex-ordering quality (Theorem 1): MDE vs boundary-first order."""

from repro.experiments.ablations import ordering_ablation_rows
from repro.experiments.runner import print_experiment

from conftest import run_once


def test_ablation_ordering(benchmark, quick_config):
    rows = run_once(benchmark, lambda: ordering_ablation_rows("NY", quick_config))
    print_experiment("Ablation A3 — vertex-ordering quality (Theorem 1)", rows)
    by_order = {row["vertex_order"]: row for row in rows}
    mde = by_order["MDE order (PostMHL / DH2H)"]
    boundary_first = by_order["boundary-first order (PMHL / PSP baselines)"]
    # Theorem 1 shape: the partition-imposed order cannot give a smaller index.
    assert boundary_first["label_entries"] >= mde["label_entries"]
