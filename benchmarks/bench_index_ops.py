"""Micro-benchmarks of the core index operations (build / query / update).

These are conventional pytest-benchmark measurements (multiple rounds) of the
primitive operations the experiments are built from, on the NY analog.
"""

import pytest

from repro.core.pmhl import PMHLIndex
from repro.core.postmhl import PostMHLIndex
from repro.graph.generators import load_dataset
from repro.graph.updates import generate_update_batch
from repro.hierarchy.ch import DCHIndex
from repro.labeling.h2h import DH2HIndex
from repro.throughput.workload import sample_query_pairs

INDEX_FACTORIES = {
    "DCH": lambda graph: DCHIndex(graph),
    "DH2H": lambda graph: DH2HIndex(graph),
    "PMHL": lambda graph: PMHLIndex(graph, num_partitions=4, seed=7),
    "PostMHL": lambda graph: PostMHLIndex(graph, bandwidth=14, expected_partitions=4),
}


@pytest.fixture(scope="module")
def ny_graph():
    return load_dataset("NY")


@pytest.mark.parametrize("method", sorted(INDEX_FACTORIES))
def test_build(benchmark, ny_graph, method):
    def build():
        index = INDEX_FACTORIES[method](ny_graph.copy())
        index.build()
        return index

    index = benchmark.pedantic(build, rounds=1, iterations=1, warmup_rounds=0)
    assert index.is_built


@pytest.mark.parametrize("method", sorted(INDEX_FACTORIES))
def test_query(benchmark, ny_graph, method):
    graph = ny_graph.copy()
    index = INDEX_FACTORIES[method](graph)
    index.build()
    pairs = list(sample_query_pairs(graph, 50, seed=1))
    state = {"i": 0}

    def one_query():
        source, target = pairs[state["i"] % len(pairs)]
        state["i"] += 1
        return index.query(source, target)

    result = benchmark(one_query)
    assert result >= 0


@pytest.mark.parametrize("method", sorted(INDEX_FACTORIES))
def test_update_batch(benchmark, ny_graph, method):
    graph = ny_graph.copy()
    index = INDEX_FACTORIES[method](graph)
    index.build()
    state = {"seed": 0}

    def one_batch():
        state["seed"] += 1
        batch = generate_update_batch(graph, volume=20, seed=state["seed"])
        return index.apply_batch(batch)

    report = benchmark.pedantic(one_batch, rounds=3, iterations=1, warmup_rounds=0)
    assert report.total_seconds >= 0
