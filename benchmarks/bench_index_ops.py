"""Micro-benchmarks of the core index operations (build / query / update).

These are conventional pytest-benchmark measurements (multiple rounds) of the
primitive operations the experiments are built from, on the NY analog.  The
``*_batch`` benchmarks time the batch query plane (``query_one_to_many`` /
``query_many``) against the scalar loop and print the measured speedup — the
CI benchmark smoke step runs exactly those (``-k batch``).
"""

import time

import pytest

from repro.graph.generators import load_dataset
from repro.graph.updates import generate_update_batch
from repro.registry import create_index, get_spec
from repro.throughput.workload import sample_query_pairs

INDEX_SPECS = {
    "DCH": get_spec("DCH"),
    "DH2H": get_spec("DH2H"),
    "PMHL": get_spec("PMHL", num_partitions=4, seed=7),
    "PostMHL": get_spec("PostMHL", bandwidth=14, expected_partitions=4),
}

#: Methods whose batch plane is benchmarked (BiDijkstra is the headline:
#: one truncated Dijkstra per source instead of one search per pair).
BATCH_SPECS = {
    "BiDijkstra": get_spec("BiDijkstra"),
    **{method: INDEX_SPECS[method] for method in ("DH2H", "PMHL", "PostMHL")},
}
BATCH_METHODS = tuple(BATCH_SPECS)


@pytest.fixture(scope="module")
def ny_graph():
    return load_dataset("NY")


@pytest.fixture(scope="module")
def built_batch_indexes(ny_graph):
    """One built index per batch-benchmark method (shared across benchmarks)."""
    built = {}
    for method in BATCH_METHODS:
        index = create_index(BATCH_SPECS[method], ny_graph.copy())
        index.build()
        built[method] = index
    return built


@pytest.mark.parametrize("method", sorted(INDEX_SPECS))
def test_build(benchmark, ny_graph, method):
    def build():
        index = create_index(INDEX_SPECS[method], ny_graph.copy())
        index.build()
        return index

    index = benchmark.pedantic(build, rounds=1, iterations=1, warmup_rounds=0)
    assert index.is_built


@pytest.mark.parametrize("method", sorted(INDEX_SPECS))
def test_query(benchmark, ny_graph, method):
    graph = ny_graph.copy()
    index = create_index(INDEX_SPECS[method], graph)
    index.build()
    pairs = list(sample_query_pairs(graph, 50, seed=1))
    state = {"i": 0}

    def one_query():
        source, target = pairs[state["i"] % len(pairs)]
        state["i"] += 1
        return index.query(source, target)

    result = benchmark(one_query)
    assert result >= 0


@pytest.mark.parametrize("method", BATCH_METHODS)
def test_query_one_to_many_batch(benchmark, built_batch_indexes, method):
    """Batch one-to-many vs. the scalar loop; prints the measured speedup."""
    index = built_batch_indexes[method]
    graph = index.graph
    source = next(iter(sample_query_pairs(graph, 1, seed=3)))[0]
    targets = [t for _, t in sample_query_pairs(graph, 100, seed=4)]

    start = time.perf_counter()
    scalar = [index.query(source, target) for target in targets]
    scalar_seconds = time.perf_counter() - start

    batch = benchmark(lambda: index.query_one_to_many(source, targets))
    assert all(abs(a - b) <= 1e-9 for a, b in zip(scalar, batch))

    batch_seconds = benchmark.stats.stats.mean
    speedup = scalar_seconds / batch_seconds if batch_seconds > 0 else float("inf")
    print(f"\n[{method}] one-to-many x{len(targets)}: "
          f"scalar {scalar_seconds * 1e3:.2f}ms, batch {batch_seconds * 1e3:.2f}ms, "
          f"speedup {speedup:.1f}x")
    if method == "BiDijkstra":
        # The acceptance bar: the shared truncated Dijkstra must beat the
        # scalar loop by at least 2x on the quick dataset.
        assert speedup >= 2.0


@pytest.mark.parametrize("method", BATCH_METHODS)
def test_query_many_batch(benchmark, built_batch_indexes, method):
    """Arbitrary pair batches (grouped by source internally)."""
    index = built_batch_indexes[method]
    graph = index.graph
    sources = [s for s, _ in sample_query_pairs(graph, 8, seed=5)]
    targets = [t for _, t in sample_query_pairs(graph, 25, seed=6)]
    pairs = [(s, t) for s in sources for t in targets]

    batch = benchmark(lambda: index.query_many(pairs))
    assert len(batch) == len(pairs)
    assert all(d >= 0 for d in batch)


@pytest.mark.parametrize("method", sorted(INDEX_SPECS))
def test_update_batch(benchmark, ny_graph, method):
    graph = ny_graph.copy()
    index = create_index(INDEX_SPECS[method], graph)
    index.build()
    state = {"seed": 0}

    def one_batch():
        state["seed"] += 1
        batch = generate_update_batch(graph, volume=20, seed=state["seed"])
        return index.apply_batch(batch)

    report = benchmark.pedantic(one_batch, rounds=3, iterations=1, warmup_rounds=0)
    assert report.total_seconds >= 0
