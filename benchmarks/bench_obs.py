"""Observability overhead benchmark: the disabled fast path must be free.

``repro.obs`` instruments the serving hot path (``serve_batch`` /
``record_query``), the kernel freeze path and every ``apply_batch`` stage.
All of it hides behind a module-level enabled flag; this benchmark measures
what that flag check costs on a representative serving workload:

* ``baseline`` — the same workload with the ``obs`` module reference in the
  engine / metrics / base hot paths swapped for an inert stub, i.e. the
  closest dynamic approximation of the pre-instrumentation code,
* ``disabled`` — instrumentation present, observability off (the shipped
  default), and
* ``enabled`` — full span + registry recording, for information.

Modes run interleaved over several rounds and the best round per mode is
compared (minimum wall time is the noise-robust estimator for identical
work).  The acceptance bar — **disabled overhead < 3 %** of baseline
throughput — is asserted and recorded in ``BENCH_obs.json``.  Run directly::

    PYTHONPATH=src python benchmarks/bench_obs.py [--out BENCH_obs.json]
                                                  [--side 30]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from typing import Dict, List

import repro.base as base_module
import repro.serving.engine as engine_module
import repro.serving.metrics as metrics_module
from repro import obs
from repro.graph.generators import grid_road_network
from repro.registry import create_index, get_spec
from repro.serving.engine import ServingEngine
from repro.throughput.workload import sample_query_pairs

OVERHEAD_BAR = 0.03
DEFAULT_SIDE = 30
QUERY_COUNT = 40_000
CHUNK = 64
ROUNDS = 5

#: Modules whose hot paths consult ``obs``; the baseline mode swaps their
#: module-level ``obs`` reference for :class:`_ObsStub`.
_HOT_MODULES = (engine_module, metrics_module, base_module)


class _NoopSpan:
    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


class _ObsStub:
    """Inert stand-in for the ``repro.obs`` module (pre-instrumentation code)."""

    _span = _NoopSpan()

    @staticmethod
    def is_enabled() -> bool:
        return False

    @classmethod
    def span(cls, name, **args):
        return cls._span

    @staticmethod
    def record_span(name, seconds, **args):
        pass


def _serve_workload(engine: ServingEngine, chunks: List[List[tuple]]) -> float:
    """Serve every chunk through the batch plane; returns wall seconds."""
    start = time.perf_counter()
    for chunk in chunks:
        engine.serve_batch(chunk)
    return time.perf_counter() - start


def run(out_path: str, side: int = DEFAULT_SIDE) -> Dict[str, object]:
    graph = grid_road_network(side, side, seed=5)
    spec = get_spec("PMHL", num_partitions=4, seed=0)
    index = create_index(spec, graph)
    index.build()

    pairs = list(sample_query_pairs(graph, QUERY_COUNT, seed=3))
    chunks = [pairs[i : i + CHUNK] for i in range(0, len(pairs), CHUNK)]

    # Cache off: a 100% warm cache would measure dict lookups, not the
    # serving path the instrumentation actually sits on.
    engine = ServingEngine(index, cache_capacity=0).start()
    try:
        # Warm-up: freeze the kernels and JIT-warm the interpreter caches.
        _serve_workload(engine, chunks)

        times: Dict[str, List[float]] = {"baseline": [], "disabled": [], "enabled": []}
        for _ in range(ROUNDS):
            # baseline: hot paths see an inert obs stub.
            obs.disable()
            for module in _HOT_MODULES:
                module.obs = _ObsStub
            try:
                times["baseline"].append(_serve_workload(engine, chunks))
            finally:
                for module in _HOT_MODULES:
                    module.obs = obs

            # disabled: shipped default — instrumentation behind the flag.
            obs.disable()
            times["disabled"].append(_serve_workload(engine, chunks))

            # enabled: full recording.
            obs.enable()
            times["enabled"].append(_serve_workload(engine, chunks))
            obs.disable()
            obs.reset()
    finally:
        engine.stop()

    best = {mode: min(samples) for mode, samples in times.items()}
    qps = {mode: len(pairs) / seconds for mode, seconds in best.items()}
    disabled_overhead = max(0.0, 1.0 - qps["disabled"] / qps["baseline"])
    enabled_overhead = max(0.0, 1.0 - qps["enabled"] / qps["baseline"])

    report: Dict[str, object] = {
        "benchmark": "observability overhead (repro.obs)",
        "graph": {
            "kind": "grid",
            "side": side,
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
        },
        "method": "PMHL",
        "queries": len(pairs),
        "chunk": CHUNK,
        "rounds": ROUNDS,
        "overhead_bar": OVERHEAD_BAR,
        "python": platform.python_version(),
        "seconds": times,
        "best_seconds": best,
        "qps": qps,
        "disabled_overhead": disabled_overhead,
        "enabled_overhead": enabled_overhead,
    }

    for mode in ("baseline", "disabled", "enabled"):
        print(f"{mode:>9}: best {best[mode]:.3f}s  ({qps[mode]:,.0f} qps)")
    print(
        f"disabled overhead {disabled_overhead * 100:.2f}% "
        f"(bar < {OVERHEAD_BAR * 100:.0f}%), "
        f"enabled overhead {enabled_overhead * 100:.2f}%"
    )

    assert disabled_overhead < OVERHEAD_BAR, (
        f"disabled observability must cost < {OVERHEAD_BAR * 100:.0f}% serving "
        f"throughput, measured {disabled_overhead * 100:.2f}%"
    )

    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(f"\nwrote {out_path}")
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_obs.json", help="output JSON path")
    parser.add_argument(
        "--side", type=int, default=DEFAULT_SIDE, help="grid side length"
    )
    args = parser.parse_args()
    run(args.out, side=args.side)


if __name__ == "__main__":
    main()
