"""Exp 8 / Figure 18 — effect of the TD-partitioning bandwidth τ on PostMHL."""

from repro.experiments import exp8_bandwidth
from repro.experiments.runner import print_experiment

from conftest import run_once


def test_exp8_bandwidth(benchmark, quick_config):
    rows = run_once(benchmark, lambda: exp8_bandwidth.run(quick_config, quick=True))
    print_experiment("Figure 18 — effect of bandwidth τ (PostMHL)", rows)
    taus = [row["bandwidth"] for row in rows]
    overlays = [row["overlay_vertices"] for row in rows]
    # Paper shape: larger bandwidth gives a (weakly) smaller overlay graph.
    assert all(b <= a * 1.5 for a, b in zip(overlays, overlays[1:])) or len(set(taus)) == 1
