"""Exp 7 / Figure 17 — effect of the expected partition number k_e on PostMHL."""

from repro.experiments import exp7_ke
from repro.experiments.runner import print_experiment

from conftest import run_once


def test_exp7_ke(benchmark, quick_config):
    rows = run_once(benchmark, lambda: exp7_ke.run(quick_config, quick=True))
    print_experiment("Figure 17 — effect of k_e (PostMHL)", rows)
    assert all(row["throughput"] >= 0 for row in rows)
