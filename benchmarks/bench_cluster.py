"""Cluster scaling benchmark: sharded multi-process QPS vs one process.

Builds PMHL on the medium grid analog, snapshots it, and measures sustained
closed-loop batch QPS for

* the single-process :class:`~repro.serving.engine.ServingEngine` (cache off,
  so every query pays the index — the honest baseline), and
* :class:`~repro.cluster.ClusterEngine` at 1, 2 and 4 workers over the same
  mmap-backed snapshot,

asserting along the way that every configuration answers the workload
bit-identically to the in-process index.  A comparison row evaluates exp 6's
analytic thread model (:class:`~repro.throughput.ThroughputEvaluator` at
p = 1/2/4) on the same index and update batch — the paper's virtual-thread
speedup the cluster is the wall-clock realization of.

The headline acceptance bar — **>= 2x sustained QPS at 4 workers over the
single process** — needs 4 actual cores to be physically meaningful; one
worker per core is the whole point of escaping the GIL.  On smaller machines
(this includes single-core CI containers) the bar is recorded as waived in
``BENCH_cluster.json`` together with the measured core count, and the numbers
are still reported honestly.  Run directly::

    PYTHONPATH=src python benchmarks/bench_cluster.py [--out BENCH_cluster.json]
                                                      [--side 50] [--duration 1.5]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time
from typing import Callable, Dict, List

from repro.cluster import ClusterEngine
from repro.experiments.config import DEFAULT_CONFIG
from repro.graph.generators import grid_road_network
from repro.graph.updates import generate_update_batch
from repro.registry import create_index, get_spec
from repro.serving.engine import ServingEngine
from repro.store import load_index, save_index
from repro.throughput.evaluator import ThroughputEvaluator
from repro.throughput.workload import sample_query_pairs

SPEEDUP_BAR = 2.0
WORKER_GRID = (1, 2, 4)
DEFAULT_SIDE = 50
DEFAULT_DURATION = 1.5
BATCH_QUERIES = 512


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _closed_loop(
    query_batch: Callable[[List], List[float]],
    pairs: List,
    duration: float,
    expected: List[float],
) -> Dict[str, float]:
    """Drive ``query_batch`` flat out for ``duration`` seconds.

    The first batch is verified bit-identical to ``expected`` (and not
    timed — it pays any lazy warm-up), then batches run back to back and the
    sustained rate is total queries over elapsed wall clock.
    """
    assert query_batch(pairs) == expected, "answers diverged from the index"
    served = 0
    batch_walls: List[float] = []
    started = time.perf_counter()
    deadline = started + duration
    while time.perf_counter() < deadline:
        batch_start = time.perf_counter()
        query_batch(pairs)
        batch_walls.append(time.perf_counter() - batch_start)
        served += len(pairs)
    elapsed = time.perf_counter() - started
    batch_walls.sort()
    return {
        "queries": served,
        "elapsed_seconds": elapsed,
        "qps": served / elapsed,
        "batches": len(batch_walls),
        "batch_wall_p50_ms": 1e3 * batch_walls[len(batch_walls) // 2],
        "batch_wall_p95_ms": 1e3 * batch_walls[int(len(batch_walls) * 0.95)],
    }


def _analytic_rows(snapshot_path: str, workload) -> List[Dict[str, float]]:
    """Exp 6's virtual-thread model on the same index, at p = 1/2/4."""
    index = load_index(snapshot_path)
    batch = generate_update_batch(
        index.graph, DEFAULT_CONFIG.update_volume, seed=DEFAULT_CONFIG.seed
    )
    report = index.apply_batch(batch)
    rows = []
    for threads in WORKER_GRID:
        evaluator = ThroughputEvaluator(
            update_interval=DEFAULT_CONFIG.update_interval,
            response_qos=DEFAULT_CONFIG.response_qos,
            threads=threads,
            query_sample_size=DEFAULT_CONFIG.query_sample_size,
        )
        result = evaluator.evaluate_from_report(index, report, workload)
        rows.append(
            {
                "threads": threads,
                "analytic_max_qps": result.max_throughput,
                "update_wall_seconds": result.update_wall_seconds,
            }
        )
    return rows


def run(
    out_path: str, side: int = DEFAULT_SIDE, duration: float = DEFAULT_DURATION
) -> Dict[str, object]:
    base = grid_road_network(side, side, seed=5)
    workload = sample_query_pairs(base, BATCH_QUERIES, seed=3)
    pairs = list(workload)
    cores = _cores()

    index = create_index(get_spec("PMHL", num_partitions=4, seed=0), base.copy())
    start = time.perf_counter()
    index.build()
    build_seconds = time.perf_counter() - start
    expected = index.query_many(pairs)

    report: Dict[str, object] = {
        "benchmark": "sharded multi-process serving (repro.cluster)",
        "method": "PMHL",
        "graph": {
            "kind": "grid",
            "side": side,
            "vertices": base.num_vertices,
            "edges": base.num_edges,
        },
        "cores": cores,
        "python": platform.python_version(),
        "batch_queries": BATCH_QUERIES,
        "duration_seconds": duration,
        "build_seconds": build_seconds,
        "speedup_bar": SPEEDUP_BAR,
        "cluster": {},
    }

    with tempfile.TemporaryDirectory(prefix="bench_cluster_") as tmp:
        snapshot = os.path.join(tmp, "gen-000000")
        save_index(index, snapshot, atomic=True, generation=0)

        with ServingEngine.from_snapshot(snapshot, cache_capacity=0) as single:
            single_row = _closed_loop(single.query_batch, pairs, duration, expected)
        report["single_process"] = single_row
        print(
            f"single process : {single_row['qps']:10.0f} QPS  "
            f"(p50 batch {single_row['batch_wall_p50_ms']:.2f} ms)"
        )

        for workers in WORKER_GRID:
            cluster = ClusterEngine(
                snapshot,
                num_workers=workers,
                publish_dir=os.path.join(tmp, f"gens-{workers}"),
            )
            with cluster:
                row = _closed_loop(cluster.query_batch, pairs, duration, expected)
                row["speedup_vs_single"] = row["qps"] / single_row["qps"]
                row["partition_aware"] = cluster.partition_aware
                row["per_worker_queries"] = [
                    stats["queries_served"] for stats in cluster.worker_stats()
                ]
            report["cluster"][str(workers)] = row
            print(
                f"{workers} worker(s)    : {row['qps']:10.0f} QPS  "
                f"({row['speedup_vs_single']:4.2f}x single, "
                f"shard split {row['per_worker_queries']})"
            )

        report["analytic_thread_model"] = _analytic_rows(snapshot, workload)
        for row in report["analytic_thread_model"]:
            print(
                f"exp6 analytic p={row['threads']}: "
                f"{row['analytic_max_qps']:10.0f} QPS bound"
            )

    speedup = report["cluster"]["4"]["speedup_vs_single"]
    bar_enforced = cores >= 4
    report["bar_enforced"] = bar_enforced
    if bar_enforced:
        report["bar_waived_reason"] = None
        assert speedup >= SPEEDUP_BAR, (
            f"4 workers must sustain >= {SPEEDUP_BAR}x single-process QPS on a "
            f">=4-core machine, got {speedup:.2f}x"
        )
    else:
        report["bar_waived_reason"] = (
            f"only {cores} core(s) visible: one worker per core is the "
            f"mechanism, so the >= {SPEEDUP_BAR}x bar is physically "
            f"unreachable here and is asserted only on >= 4-core machines"
        )
        print(f"note: speedup bar waived ({report['bar_waived_reason']})")

    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(f"\nwrote {out_path}")
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_cluster.json", help="output JSON path"
    )
    parser.add_argument(
        "--side", type=int, default=DEFAULT_SIDE, help="grid side length"
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=DEFAULT_DURATION,
        help="seconds of sustained load per configuration",
    )
    args = parser.parse_args()
    run(args.out, side=args.side, duration=args.duration)


if __name__ == "__main__":
    main()
