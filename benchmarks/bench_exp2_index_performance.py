"""Exp 2 / Figure 11 — index performance comparison (t_c, |L|, t_q, t_u)."""

from repro.experiments import exp2_index_performance
from repro.experiments.runner import print_experiment

from conftest import run_once


def test_exp2_index_performance(benchmark, quick_config):
    rows = run_once(benchmark, lambda: exp2_index_performance.run(quick_config, quick=True))
    print_experiment("Figure 11 — index performance comparison", rows)
    by_method = {row["method"]: row for row in rows}
    # Paper shape: hop-based query beats search-based query by orders of magnitude.
    assert by_method["PostMHL"]["query_seconds"] < by_method["BiDijkstra"]["query_seconds"]
    assert by_method["DH2H"]["query_seconds"] < by_method["DCH"]["query_seconds"]
