"""Exp 4 / Figure 13 — evolution of queries-per-second during the update interval."""

from repro.experiments import exp4_qps_evolution
from repro.experiments.runner import print_experiment

from conftest import run_once


def test_exp4_qps_evolution(benchmark, quick_config):
    rows = run_once(benchmark, lambda: exp4_qps_evolution.run(quick_config, quick=True))
    print_experiment("Figure 13 — QPS evolution over the update interval", rows)
    assert rows
    for method in {row["method"] for row in rows}:
        series = [r["queries_per_second"] for r in rows if r["method"] == method]
        assert all(b >= a - 1e-9 for a, b in zip(series, series[1:]))
