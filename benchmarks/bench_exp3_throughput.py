"""Exp 3 / Figure 12 — throughput comparison across datasets."""

from repro.experiments import exp3_throughput
from repro.experiments.runner import print_experiment

from conftest import run_once


def test_exp3_throughput(benchmark, quick_config):
    rows = run_once(benchmark, lambda: exp3_throughput.run(quick_config, quick=True))
    print_experiment("Figure 12 — throughput comparison", rows)
    by_method = {row["method"]: row["throughput"] for row in rows}
    best_proposed = max(by_method["PMHL"], by_method["PostMHL"])
    best_baseline = max(
        v for k, v in by_method.items() if k not in ("PMHL", "PostMHL")
    )
    # Paper shape: the proposed methods sustain at least the best baseline.
    assert best_proposed >= best_baseline * 0.8
