"""Exp 1 / Figure 10 — effect of partition number k on PMHL."""

from repro.experiments import exp1_partition_number
from repro.experiments.runner import print_experiment

from conftest import run_once


def test_exp1_partition_number(benchmark, quick_config):
    rows = run_once(benchmark, lambda: exp1_partition_number.run(quick_config, quick=True))
    print_experiment("Figure 10 — effect of partition number k (PMHL)", rows)
    assert {row["k"] for row in rows} == set(quick_config.partition_number_grid)
