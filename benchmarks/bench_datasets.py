"""Table I — dataset statistics of the synthetic analogs."""

from repro.experiments import datasets
from repro.experiments.runner import print_experiment

from conftest import run_once


def test_table1_datasets(benchmark, quick_config):
    rows = run_once(benchmark, lambda: datasets.run(quick_config, quick=True))
    print_experiment("Table I — dataset statistics (synthetic analogs)", rows)
    assert rows
