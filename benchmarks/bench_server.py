"""Network query plane benchmark: closed-loop latency/QPS through the socket.

Builds PMHL on a grid road-network analog and drives the asyncio front end
(:mod:`repro.server`) with the closed-loop async load generator, measuring
sustained QPS and client-observed p50/p99/p999 per-operation latency for

* the **scalar** plane (one ``query`` frame per round trip), and
* the **batch** plane (``query_batch`` frames of ``--batch-size`` pairs),

over both backends the server can front:

* a single-process :class:`~repro.serving.engine.ServingEngine` (cache off,
  every query pays the index), and
* a 2-worker :class:`~repro.cluster.ClusterEngine` over an mmap snapshot of
  the same index.

The batch plane amortises framing, JSON, and scheduling across
``--batch-size`` queries per round trip, so the acceptance bar asserted here
— **batch QPS >= 2x scalar QPS on every backend** — is about the protocol,
not the cores, and holds on single-core CI.  Results land in
``BENCH_server.json``.  Run directly::

    PYTHONPATH=src python benchmarks/bench_server.py [--out BENCH_server.json]
                                                     [--side 30] [--duration 1.0]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import tempfile
import time
from typing import Dict, List

from repro.cluster import ClusterEngine
from repro.graph.generators import grid_road_network
from repro.registry import create_index, get_spec
from repro.server import QueryServer, run_closed_loop
from repro.serving.engine import ServingEngine
from repro.store import save_index
from repro.throughput.workload import sample_query_pairs

BATCH_SPEEDUP_BAR = 2.0
DEFAULT_SIDE = 30
DEFAULT_DURATION = 1.0
DEFAULT_BATCH = 64
DEFAULT_CONCURRENCY = 4


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


async def _measure_backend(
    backend, label: str, pairs, args
) -> List[Dict[str, object]]:
    """One server over ``backend``; scalar then batch closed-loop runs."""
    server = QueryServer(backend, port=0)
    await server.start()
    try:
        host, port = server.address
        rows = []
        for plane, batch_size in (("scalar", 0), ("batch", args.batch_size)):
            report = await run_closed_loop(
                host,
                port,
                pairs,
                duration_seconds=args.duration,
                concurrency=args.concurrency,
                batch_size=batch_size,
                label=f"{label}-{plane}",
            )
            row = report.to_dict()
            row["backend"] = label
            row["plane"] = plane
            rows.append(row)
            print(
                f"  {row['label']:>16}: {row['qps']:>10.0f} qps  "
                f"p50 {row['p50_seconds'] * 1e3:7.3f} ms  "
                f"p99 {row['p99_seconds'] * 1e3:7.3f} ms  "
                f"p999 {row['p999_seconds'] * 1e3:7.3f} ms",
                flush=True,
            )
        return rows
    finally:
        await server.stop()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_server.json")
    parser.add_argument("--side", type=int, default=DEFAULT_SIDE)
    parser.add_argument("--duration", type=float, default=DEFAULT_DURATION)
    parser.add_argument("--batch-size", type=int, default=DEFAULT_BATCH)
    parser.add_argument("--concurrency", type=int, default=DEFAULT_CONCURRENCY)
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args()

    graph = grid_road_network(args.side, args.side, seed=7)
    print(
        f"building PMHL on {args.side}x{args.side} grid "
        f"(n={graph.num_vertices}, cores={_cores()})...",
        flush=True,
    )
    index = create_index(get_spec("PMHL", num_partitions=4, seed=0), graph)
    index.build()
    pairs = list(sample_query_pairs(graph, 256, seed=11))

    rows: List[Dict[str, object]] = []
    with tempfile.TemporaryDirectory(prefix="repro_bench_server_") as scratch:
        print("single-process ServingEngine:", flush=True)
        with ServingEngine(index, cache_capacity=0) as engine:
            rows += asyncio.run(_measure_backend(engine, "single", pairs, args))

        snapshot = os.path.join(scratch, "gen-000000")
        save_index(index, snapshot, atomic=True, generation=0)
        print(f"{args.workers}-worker ClusterEngine:", flush=True)
        # fork-before-loop: start the workers outside asyncio.run.
        with ClusterEngine(
            snapshot, num_workers=args.workers, publish_dir=scratch
        ) as cluster:
            rows += asyncio.run(_measure_backend(cluster, "cluster", pairs, args))

    checks = []
    for backend in ("single", "cluster"):
        scalar = next(r for r in rows if r["label"] == f"{backend}-scalar")
        batch = next(r for r in rows if r["label"] == f"{backend}-batch")
        speedup = batch["qps"] / scalar["qps"] if scalar["qps"] else float("inf")
        met = speedup >= BATCH_SPEEDUP_BAR
        checks.append(
            {
                "backend": backend,
                "bar": BATCH_SPEEDUP_BAR,
                "batch_over_scalar_qps": speedup,
                "met": met,
            }
        )
        print(
            f"{backend}: batch/scalar QPS = {speedup:.1f}x "
            f"(bar {BATCH_SPEEDUP_BAR:.1f}x, {'met' if met else 'MISSED'})",
            flush=True,
        )

    payload = {
        "benchmark": "server",
        "created_unix": time.time(),
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cores": _cores(),
        },
        "config": {
            "method": "PMHL",
            "grid_side": args.side,
            "num_vertices": graph.num_vertices,
            "duration_seconds": args.duration,
            "batch_size": args.batch_size,
            "concurrency": args.concurrency,
            "cluster_workers": args.workers,
        },
        "runs": rows,
        "batch_speedup_checks": checks,
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}", flush=True)

    assert all(c["met"] for c in checks), (
        "batch plane failed to clear the 2x QPS bar over scalar: "
        f"{checks}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
